package simdisk

import (
	"fmt"
	"testing"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

var testCfg = Config{
	ReadBytesPerSec:  100e6,
	WriteBytesPerSec: 50e6,
	SeekTime:         sim.Millisecond,
}

func TestReadTiming(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", testCfg, nil)
	eng.Spawn("reader", func(p *sim.Proc) {
		d.Read(p, 100e6) // 1s at 100MB/s + 1ms seek
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Second + sim.Millisecond; eng.Now() != want {
		t.Errorf("clock %v, want %v", eng.Now(), want)
	}
	if d.BytesRead() != 100e6 || d.Reads() != 1 {
		t.Errorf("read accounting: %d bytes, %d ops", d.BytesRead(), d.Reads())
	}
}

func TestWriteTimingUsesWriteRate(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", testCfg, nil)
	eng.Spawn("writer", func(p *sim.Proc) {
		d.Write(p, 50e6) // 1s at 50MB/s + 1ms seek
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Second + sim.Millisecond; eng.Now() != want {
		t.Errorf("clock %v, want %v", eng.Now(), want)
	}
	if d.BytesWritten() != 50e6 || d.Writes() != 1 {
		t.Errorf("write accounting: %d bytes, %d ops", d.BytesWritten(), d.Writes())
	}
}

func TestRequestsQueueOnOneSpindle(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", testCfg, nil)
	for i := 0; i < 4; i++ {
		eng.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			d.Read(p, 100e6)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 4 * (sim.Second + sim.Millisecond); eng.Now() != want {
		t.Errorf("clock %v, want %v (FIFO queueing)", eng.Now(), want)
	}
}

func TestSeekChargedPerRequest(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", Config{ReadBytesPerSec: 1e12, WriteBytesPerSec: 1e12, SeekTime: sim.Millisecond}, nil)
	eng.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			d.Read(p, 1)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() < 10*sim.Millisecond {
		t.Errorf("clock %v, want >= 10ms of seeks", eng.Now())
	}
}

func TestZeroSizeIsFree(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", testCfg, nil)
	eng.Spawn("r", func(p *sim.Proc) {
		d.Read(p, 0)
		d.Write(p, -5)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 0 || d.Reads() != 0 || d.Writes() != 0 {
		t.Error("zero/negative size should be a no-op")
	}
}

func TestSharedTrafficCollector(t *testing.T) {
	eng := sim.NewEngine()
	tr := metrics.NewTraffic()
	d := New(eng, "d0", testCfg, tr)
	eng.Spawn("rw", func(p *sim.Proc) {
		d.Read(p, 100)
		d.Write(p, 200)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Bytes(metrics.DiskRead) != 100 || tr.Bytes(metrics.DiskWrite) != 200 {
		t.Errorf("traffic %v", tr)
	}
}

func TestBusyTimeTracksUtilization(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", testCfg, nil)
	eng.Spawn("r", func(p *sim.Proc) {
		d.Read(p, 100e6)
		p.Sleep(sim.Second) // idle gap must not count
		d.Read(p, 100e6)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2 * (sim.Second + sim.Millisecond)
	if got := d.BusyTime(); got != want {
		t.Errorf("busy %v, want %v", got, want)
	}
}
