package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*Millisecond {
		t.Errorf("woke at %v, want 5ms", at)
	}
	if e.Now() != 5*Millisecond {
		t.Errorf("final clock %v, want 5ms", e.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEngine()
	e.Spawn("s", func(p *Proc) { p.Sleep(-1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 {
		t.Errorf("clock %v, want 0", e.Now())
	}
}

func TestSequentialSleepsAccumulate(t *testing.T) {
	e := NewEngine()
	e.Spawn("s", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Millisecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10*Millisecond {
		t.Errorf("clock %v, want 10ms", e.Now())
	}
}

func TestParallelProcessesOverlap(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) { p.Sleep(7 * Millisecond) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 7*Millisecond {
		t.Errorf("clock %v, want 7ms (parallel sleeps must overlap)", e.Now())
	}
}

func TestFIFOOrderAtSameTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Millisecond) // all wake at the same instant
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want ascending spawn order", order)
		}
	}
}

func TestSpawnFromWithinProcess(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Millisecond)
		p.Spawn("child", func(c *Proc) {
			c.Sleep(2 * Millisecond)
			childRan = true
		})
		p.Sleep(Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Error("child never ran")
	}
	if e.Now() != 3*Millisecond {
		t.Errorf("clock %v, want 3ms", e.Now())
	}
}

func TestDeterministicEventCount(t *testing.T) {
	run := func() (Time, uint64) {
		e := NewEngine()
		box := NewMailbox[int](e, "box")
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("producer%d", i), func(p *Proc) {
				p.Sleep(Time(i) * Millisecond)
				box.Put(i)
			})
		}
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 4; i++ {
				box.Get(p)
				p.Sleep(500 * Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Events()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Errorf("nondeterministic run: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	box := NewMailbox[int](e, "never")
	e.Spawn("stuck", func(p *Proc) { box.Get(p) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Stuck) != 1 || !strings.Contains(dl.Stuck[0], "stuck") {
		t.Errorf("stuck list = %v, want [stuck (recv never)]", dl.Stuck)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomb", func(p *Proc) {
		p.Sleep(Millisecond)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate to Run caller")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Errorf("panic value %v does not mention boom", r)
		}
	}()
	_ = e.Run()
	t.Fatal("Run returned normally")
}

func TestEmptyRun(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatalf("empty run: %v", err)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) { p.Sleep(Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.schedule(0, &Proc{eng: e})
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{42, "42ns"},
		{3 * Microsecond, "3.000µs"},
		{Time(1.5 * float64(Millisecond)), "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1000, 1000); got != Second {
		t.Errorf("1000B at 1000B/s = %v, want 1s", got)
	}
	if got := TransferTime(0, 100); got != 0 {
		t.Errorf("0 bytes = %v, want 0", got)
	}
	if got := TransferTime(100, 0); got != 0 {
		t.Errorf("zero rate = %v, want 0 (disabled)", got)
	}
	if got := TransferTime(64*1024, 100e6); got != Time(655360) {
		t.Errorf("64KB at 100MB/s = %v, want 655.36µs", got)
	}
}

func TestSecondsAndMilliseconds(t *testing.T) {
	d := 1500 * Millisecond
	if d.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", d.Seconds())
	}
	if d.Milliseconds() != 1500 {
		t.Errorf("Milliseconds() = %v, want 1500", d.Milliseconds())
	}
}
