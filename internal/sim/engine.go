package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine drives a simulation: it owns the virtual clock, the event queue,
// and the set of live processes. Create one with NewEngine, spawn processes
// with Spawn, then call Run.
//
// The Engine is not safe for concurrent use from multiple goroutines other
// than through the Proc handles it manages itself.
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap

	// yield is the rendezvous channel on which the currently running
	// process returns control to the engine.
	yield chan struct{}

	live    int                   // processes spawned and not yet finished
	fg      int                   // queued foreground events (everything but daemon timers)
	blocked map[*Proc]blockReason // parked processes, with a reason for diagnostics

	panicVal any // panic captured from a process, re-raised by Run

	stopping bool // Shutdown in progress: parked processes unwind and exit

	spawned uint64 // total processes ever spawned (for naming and stats)
	events  uint64 // total events dispatched (for stats)

	// procFree recycles finished processes: the Proc struct, its wake
	// channel, and — because each pooled Proc's goroutine parks in procLoop
	// instead of exiting — the goroutine itself. Spawning from the pool
	// therefore costs no allocation, which matters on hot paths that fork a
	// child per message.
	procFree []*Proc
}

// shutdownSentinel unwinds a process's stack during Shutdown. It is
// recovered by the spawn wrapper and never escapes the engine.
type shutdownSentinel struct{}

// blockReason describes why a process is parked, split into a verb
// ("recv", "acquire", …) and the blocking object's name so hot paths never
// build a combined string; it is only formatted in deadlock reports.
type blockReason struct{ verb, name string }

func (r blockReason) String() string {
	if r.name == "" {
		return r.verb
	}
	return r.verb + " " + r.name
}

// NewEngine returns an engine with the clock at zero and no processes.
func NewEngine() *Engine {
	return &Engine{
		queue:   newEventHeap(),
		yield:   make(chan struct{}),
		blocked: make(map[*Proc]blockReason),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events dispatched so far. Two runs of the
// same deterministic simulation dispatch identical event counts.
func (e *Engine) Events() uint64 { return e.events }

// Live returns the number of processes that have been spawned and have not
// yet returned.
func (e *Engine) Live() int { return e.live }

// schedule enqueues a wake-up for p at time at (which must be >= now).
func (e *Engine) schedule(at Time, p *Proc) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", at, e.now))
	}
	e.seq++
	e.fg++
	e.queue.push(event{at: at, seq: e.seq, proc: p})
}

// Timer is a pending AfterFunc callback. Stop cancels it; a canceled timer
// is skipped by the dispatch loop without advancing the clock or counting
// as an event, so cancellation leaves no trace in the simulation.
type Timer struct {
	fn       func()
	canceled bool
	fired    bool
	daemon   bool
}

// Stop cancels the timer and reports whether it was still pending. Stop
// must not be called again after the callback has run and the handle has
// been discarded.
func (t *Timer) Stop() bool {
	if t.fired || t.canceled {
		return false
	}
	t.canceled = true
	return true
}

// Fired reports whether the callback has run.
func (t *Timer) Fired() bool { return t.fired }

// AfterFunc schedules fn to run on the engine goroutine after d simulated
// time. The callback may schedule processes, fire signals, or put into
// mailboxes, but must not block. A pending AfterFunc counts as foreground
// work: Run keeps dispatching until it fires or is stopped.
func (e *Engine) AfterFunc(d Time, fn func()) *Timer {
	return e.afterFunc(d, fn, false)
}

// AfterFuncDaemon is AfterFunc for background callbacks: like daemon
// processes, a pending daemon timer does not keep Run alive. If the event
// queue drains to daemon timers only, Run returns and the callbacks stay
// queued for a later Run (or are dropped with the engine). Fault-injection
// plans use this so trailing fault events never extend a measured run.
func (e *Engine) AfterFuncDaemon(d Time, fn func()) *Timer {
	return e.afterFunc(d, fn, true)
}

func (e *Engine) afterFunc(d Time, fn func(), daemon bool) *Timer {
	if d < 0 {
		d = 0
	}
	t := &Timer{fn: fn, daemon: daemon}
	e.seq++
	if !daemon {
		e.fg++
	}
	e.queue.push(event{at: e.now + d, seq: e.seq, timer: t})
	return t
}

// Spawn creates a new process running fn and schedules it to start at the
// current simulated time. It may be called before Run or from inside a
// running process. The name is used in diagnostics only.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon creates a server-style process that is expected to outlive
// the workload: Run neither waits for it nor reports it as deadlocked when
// the event queue drains while it is parked (e.g. waiting for the next
// request on a mailbox).
func (e *Engine) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	e.spawned++
	if name == "" {
		name = fmt.Sprintf("proc-%d", e.spawned)
	}
	var p *Proc
	if n := len(e.procFree); n > 0 {
		p = e.procFree[n-1]
		e.procFree[n-1] = nil
		e.procFree = e.procFree[:n-1]
		p.name, p.fn, p.daemon, p.done = name, fn, daemon, false
	} else {
		p = &Proc{
			eng:    e,
			name:   name,
			wake:   make(chan struct{}),
			daemon: daemon,
			fn:     fn,
		}
		go procLoop(p)
	}
	if !daemon {
		e.live++
	}
	e.blocked[p] = blockReason{verb: "start"}
	e.schedule(e.now, p)
	return p
}

// procLoop is the body of every process goroutine. After the process
// function returns, the goroutine parks and the Proc joins the engine's
// free list for the next spawn, so process churn costs no allocations.
// During Shutdown the loop exits instead, letting the goroutine die.
func procLoop(p *Proc) {
	e := p.eng
	for {
		<-p.wake // wait to be scheduled for the first time (or recycled)
		if e.stopping && p.fn == nil {
			// Woken from the free list during Shutdown: just exit.
			e.yield <- struct{}{}
			return
		}
		runProcFn(p)
		if !p.daemon {
			e.live--
		}
		p.done = true
		p.fn = nil
		stop := e.stopping || e.panicVal != nil
		if !stop {
			e.procFree = append(e.procFree, p)
		}
		e.yield <- struct{}{}
		if stop {
			return
		}
	}
}

// runProcFn runs the process function, containing panics: the shutdown
// sentinel is swallowed (it only unwinds the stack), anything else is
// recorded for Run to re-raise.
func runProcFn(p *Proc) {
	defer func() {
		if r := recover(); r != nil {
			if _, isShutdown := r.(shutdownSentinel); !isShutdown {
				p.eng.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
		}
	}()
	if p.eng.stopping {
		return
	}
	p.fn(p)
}

// Run dispatches events until no foreground work remains: the queue is
// empty, or only daemon timers are left. It returns an error if processes
// remain blocked with no pending events (a deadlock), listing the stuck
// processes and what they are waiting on. If a process panicked, Run
// re-raises the panic on the caller's goroutine.
func (e *Engine) Run() error {
	for e.queue.Len() > 0 && e.fg > 0 {
		ev := e.queue.pop()
		if t := ev.timer; t != nil {
			if !t.daemon {
				e.fg--
			}
			if t.canceled {
				continue // no clock advance, no event counted
			}
			e.now = ev.at
			e.events++
			t.fired = true
			t.fn()
			continue
		}
		e.fg--
		e.now = ev.at
		e.events++
		delete(e.blocked, ev.proc)
		ev.proc.wake <- struct{}{}
		<-e.yield
		if e.panicVal != nil {
			panic(e.panicVal)
		}
	}
	if e.live > 0 {
		return &DeadlockError{Time: e.now, Stuck: e.stuckList()}
	}
	return nil
}

func (e *Engine) stuckList() []string {
	var stuck []string
	for p, reason := range e.blocked {
		if p.daemon {
			continue
		}
		stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, reason.String()))
	}
	sort.Strings(stuck)
	return stuck
}

// Shutdown terminates every parked process — daemons waiting for requests
// as well as any stragglers — so their goroutines exit and the simulation's
// memory becomes collectible. A simulation cannot be used after Shutdown.
// It is safe to call multiple times.
func (e *Engine) Shutdown() {
	e.stopping = true
	for len(e.blocked) > 0 {
		// Wake one parked process; its park() observes stopping and
		// unwinds via the sentinel panic, which the spawn wrapper recovers
		// before yielding back here. Unwinding may remove further entries
		// from blocked, so re-snapshot each iteration.
		var p *Proc
		for cand := range e.blocked {
			p = cand
			break
		}
		delete(e.blocked, p)
		p.wake <- struct{}{}
		<-e.yield
	}
	// Drain the free list so pooled goroutines exit too.
	for _, p := range e.procFree {
		p.wake <- struct{}{}
		<-e.yield
	}
	e.procFree = nil
}

// DeadlockError reports processes that were still blocked when the event
// queue drained.
type DeadlockError struct {
	Time  Time
	Stuck []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es): %s",
		d.Time, len(d.Stuck), strings.Join(d.Stuck, ", "))
}
