package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine drives a simulation: it owns the virtual clock, the event queue,
// and the set of live processes. Create one with NewEngine, spawn processes
// with Spawn, then call Run.
//
// The Engine is not safe for concurrent use from multiple goroutines other
// than through the Proc handles it manages itself.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue

	// ring is the due-now FIFO, a fast lane in front of the calendar
	// queue: an event scheduled with zero delay dispatches at the current
	// timestamp, strictly after every queue-resident event at that same
	// timestamp (those were pushed earlier, so they hold smaller seqs —
	// zero-delay pushes at the current instant can only come from code
	// running at it). Appending here and draining FIFO therefore preserves
	// the exact (at, seq) total order while skipping the priority queue
	// for the majority of events on RPC hot paths: mailbox handoffs,
	// resource grants, response deliveries. ringHead indexes the first
	// undrained entry; the slice resets (retaining capacity) when drained.
	// Classic-queue engines leave the ring unused so the heap construction
	// reproduces the pre-optimization engine exactly.
	ring     []event
	ringHead int

	// yield is the rendezvous channel on which the currently running
	// process returns control to the engine.
	yield chan struct{}

	live int // processes spawned and not yet finished
	fg   int // queued foreground events (everything but daemon timers)

	// procs is every Proc ever created, in creation order. Parked state
	// lives on the Proc itself (see Proc.parked), so dispatching an event
	// touches no map, and Shutdown unwinds in this deterministic order.
	procs []*Proc

	panicVal any // panic captured from a process, re-raised by Run

	stopping bool // Shutdown in progress: parked processes unwind and exit

	spawned uint64 // total processes ever spawned (for naming and stats)
	events  uint64 // total events dispatched (for stats)

	opts EngineOpts

	// procFree recycles finished processes: the Proc struct, its wake
	// channel, and — because each pooled Proc's goroutine parks in procLoop
	// instead of exiting — the goroutine itself. Spawning from the pool
	// therefore costs no allocation, which matters on hot paths that fork a
	// child per message.
	procFree []*Proc
}

// EngineOpts selects between the optimized and the classic engine
// construction. The zero value is the optimized default: inline task
// dispatch plus the calendar event queue. Both configurations produce
// byte-identical simulations (see task.go and DESIGN.md §11); the classic
// flags exist for before/after benchmarking and cross-checking.
type EngineOpts struct {
	// ClassicDispatch makes FastDispatch report false, steering fast-path
	// consumers (simnet, pfs) back to their process-per-step construction.
	ClassicDispatch bool
	// ClassicQueue selects the binary-heap event queue instead of the
	// calendar queue. Both pop in identical (at, seq) order.
	ClassicQueue bool
}

// shutdownSentinel unwinds a process's stack during Shutdown. It is
// recovered by the spawn wrapper and never escapes the engine.
type shutdownSentinel struct{}

// NewEngine returns an engine with the clock at zero and no processes,
// using the optimized defaults (fast dispatch, calendar queue).
func NewEngine() *Engine { return NewEngineWith(EngineOpts{}) }

// NewEngineWith returns an engine with an explicit dispatch/queue
// configuration.
func NewEngineWith(opts EngineOpts) *Engine {
	e := &Engine{
		yield: make(chan struct{}),
		opts:  opts,
	}
	if opts.ClassicQueue {
		h := newEventHeap()
		e.queue = &h
	} else {
		e.queue = newCalendarQueue()
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events dispatched so far. Two runs of the
// same deterministic simulation dispatch identical event counts, whichever
// dispatch mode and queue implementation they use.
func (e *Engine) Events() uint64 { return e.events }

// Live returns the number of processes that have been spawned and have not
// yet returned.
func (e *Engine) Live() int { return e.live }

// schedule enqueues a wake-up for p at time at (which must be >= now).
func (e *Engine) schedule(at Time, p *Proc) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", at, e.now))
	}
	e.seq++
	e.fg++
	e.pushEvent(event{at: at, seq: e.seq, who: p})
}

// pushEvent routes a new event to the due-now ring when it dispatches at
// the current instant (and the ring is in use), to the priority queue
// otherwise.
func (e *Engine) pushEvent(ev event) {
	if ev.at == e.now && !e.opts.ClassicQueue {
		e.ring = append(e.ring, ev)
		return
	}
	e.queue.push(ev)
}

// pending returns the number of undispatched events across the queue and
// the ring.
func (e *Engine) pending() int {
	return e.queue.Len() + len(e.ring) - e.ringHead
}

// nextEvent removes and returns the next event in (at, seq) order. Queue
// events due at the current instant precede the ring (they were pushed
// before the clock reached it, so their seqs are smaller); otherwise the
// ring drains FIFO, which is seq order among its entries.
func (e *Engine) nextEvent() event {
	if e.ringHead < len(e.ring) && !e.queue.due(e.now) {
		ev := e.ring[e.ringHead]
		e.ring[e.ringHead] = event{} // drop references for the GC
		e.ringHead++
		if e.ringHead == len(e.ring) {
			e.ring, e.ringHead = e.ring[:0], 0
		}
		return ev
	}
	return e.queue.pop()
}

// Timer is a pending AfterFunc callback. Stop cancels it; a canceled timer
// is skipped by the dispatch loop without advancing the clock or counting
// as an event, so cancellation leaves no trace in the simulation.
type Timer struct {
	fn       func()
	canceled bool
	fired    bool
	daemon   bool
}

// Stop cancels the timer and reports whether it was still pending. Stop
// must not be called again after the callback has run and the handle has
// been discarded.
func (t *Timer) Stop() bool {
	if t.fired || t.canceled {
		return false
	}
	t.canceled = true
	return true
}

// Fired reports whether the callback has run.
func (t *Timer) Fired() bool { return t.fired }

// AfterFunc schedules fn to run on the engine goroutine after d simulated
// time. The callback may schedule processes, fire signals, or put into
// mailboxes, but must not block. A pending AfterFunc counts as foreground
// work: Run keeps dispatching until it fires or is stopped.
func (e *Engine) AfterFunc(d Time, fn func()) *Timer {
	return e.afterFunc(d, fn, false)
}

// AfterFuncDaemon is AfterFunc for background callbacks: like daemon
// processes, a pending daemon timer does not keep Run alive. If the event
// queue drains to daemon timers only, Run returns and the callbacks stay
// queued for a later Run (or are dropped with the engine). Fault-injection
// plans use this so trailing fault events never extend a measured run.
func (e *Engine) AfterFuncDaemon(d Time, fn func()) *Timer {
	return e.afterFunc(d, fn, true)
}

func (e *Engine) afterFunc(d Time, fn func(), daemon bool) *Timer {
	if d < 0 {
		d = 0
	}
	t := &Timer{fn: fn, daemon: daemon}
	e.seq++
	if !daemon {
		e.fg++
	}
	e.pushEvent(event{at: e.now + d, seq: e.seq, who: t})
	return t
}

// Spawn creates a new process running fn and schedules it to start at the
// current simulated time. It may be called before Run or from inside a
// running process. The name is used in diagnostics only; an empty name
// formats lazily as "proc-<n>" if a diagnostic ever needs it.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon creates a server-style process that is expected to outlive
// the workload: Run neither waits for it nor reports it as deadlocked when
// the event queue drains while it is parked (e.g. waiting for the next
// request on a mailbox).
func (e *Engine) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	e.spawned++
	var p *Proc
	if n := len(e.procFree); n > 0 {
		p = e.procFree[n-1]
		e.procFree[n-1] = nil
		e.procFree = e.procFree[:n-1]
		p.name, p.id, p.fn, p.daemon, p.done = name, e.spawned, fn, daemon, false
	} else {
		p = &Proc{
			eng:    e,
			name:   name,
			id:     e.spawned,
			wake:   make(chan struct{}),
			daemon: daemon,
			fn:     fn,
		}
		e.procs = append(e.procs, p)
		go procLoop(p)
	}
	if !daemon {
		e.live++
	}
	p.parked, p.rverb, p.robj = true, "start", nil
	e.schedule(e.now, p)
	return p
}

// procLoop is the body of every process goroutine. After the process
// function returns, the goroutine parks and the Proc joins the engine's
// free list for the next spawn, so process churn costs no allocations.
// During Shutdown the loop exits instead, letting the goroutine die.
func procLoop(p *Proc) {
	e := p.eng
	for {
		<-p.wake // wait to be scheduled for the first time (or recycled)
		if e.stopping && p.fn == nil {
			// Woken from the free list during Shutdown: just exit.
			e.yield <- struct{}{}
			return
		}
		runProcFn(p)
		if !p.daemon {
			e.live--
		}
		p.done = true
		p.fn = nil
		stop := e.stopping || e.panicVal != nil
		if !stop {
			e.procFree = append(e.procFree, p)
		}
		e.yield <- struct{}{}
		if stop {
			return
		}
	}
}

// runProcFn runs the process function, containing panics: the shutdown
// sentinel is swallowed (it only unwinds the stack), anything else is
// recorded for Run to re-raise.
func runProcFn(p *Proc) {
	defer func() {
		if r := recover(); r != nil {
			if _, isShutdown := r.(shutdownSentinel); !isShutdown {
				p.eng.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.Name(), r)
			}
		}
	}()
	if p.eng.stopping {
		return
	}
	p.fn(p)
}

// Run dispatches events until no foreground work remains: the queue is
// empty, or only daemon timers are left. It returns an error if processes
// remain blocked with no pending events (a deadlock), listing the stuck
// processes and what they are waiting on. If a process panicked, Run
// re-raises the panic on the caller's goroutine.
func (e *Engine) Run() error {
	for e.pending() > 0 && e.fg > 0 {
		ev := e.nextEvent()
		switch who := ev.who.(type) {
		case *Timer:
			if !who.daemon {
				e.fg--
			}
			if who.canceled {
				continue // no clock advance, no event counted
			}
			e.now = ev.at
			e.events++
			who.fired = true
			who.fn()
		case *Proc:
			e.fg--
			e.now = ev.at
			e.events++
			who.parked = false
			who.wake <- struct{}{}
			<-e.yield
			if e.panicVal != nil {
				panic(e.panicVal)
			}
		case Tasker:
			// A task event is accounted exactly like a process event but
			// runs inline: no channel rendezvous, no goroutine switch.
			e.fg--
			e.now = ev.at
			e.events++
			who.RunTask()
		}
	}
	if e.live > 0 {
		return &DeadlockError{Time: e.now, Stuck: e.stuckList()}
	}
	return nil
}

func (e *Engine) stuckList() []string {
	var stuck []string
	for _, p := range e.procs {
		if !p.parked || p.daemon || p.done {
			continue
		}
		stuck = append(stuck, fmt.Sprintf("%s (%s)", p.Name(), p.reason()))
	}
	sort.Strings(stuck)
	return stuck
}

// Shutdown terminates every parked process — daemons waiting for requests
// as well as any stragglers — so their goroutines exit and the simulation's
// memory becomes collectible. Processes unwind in creation order, so
// teardown traces are reproducible run to run. A simulation cannot be used
// after Shutdown. It is safe to call multiple times.
func (e *Engine) Shutdown() {
	e.stopping = true
	for progress := true; progress; {
		progress = false
		for _, p := range e.procs {
			if !p.parked {
				continue
			}
			// Wake the parked process; its park() observes stopping and
			// unwinds via the sentinel panic, which the spawn wrapper
			// recovers before yielding back here. Unwinding (deferred
			// functions) may park further processes, so sweep until a full
			// pass finds nothing parked.
			p.parked = false
			p.wake <- struct{}{}
			<-e.yield
			progress = true
		}
	}
	// Drain the free list so pooled goroutines exit too.
	for _, p := range e.procFree {
		p.wake <- struct{}{}
		<-e.yield
	}
	e.procFree = nil
}

// DeadlockError reports processes that were still blocked when the event
// queue drained.
type DeadlockError struct {
	Time  Time
	Stuck []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es): %s",
		d.Time, len(d.Stuck), strings.Join(d.Stuck, ", "))
}
