package sim

import "testing"

func TestDaemonDoesNotDeadlockRun(t *testing.T) {
	e := NewEngine()
	requests := NewMailbox[int](e, "requests")
	served := 0
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			requests.Get(p)
			served++
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < 3; i++ {
			requests.Put(i)
			p.Sleep(Millisecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run with parked daemon: %v", err)
	}
	if served != 3 {
		t.Errorf("served %d, want 3", served)
	}
}

func TestNonDaemonStillDeadlocks(t *testing.T) {
	e := NewEngine()
	box := NewMailbox[int](e, "box")
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			box.Get(p)
		}
	})
	never := NewMailbox[int](e, "never")
	e.Spawn("stuck", func(p *Proc) { never.Get(p) })
	err := e.Run()
	dl, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Stuck) != 1 {
		t.Errorf("stuck = %v, want only the non-daemon process", dl.Stuck)
	}
}

func TestShutdownReleasesParkedProcesses(t *testing.T) {
	e := NewEngine()
	box := NewMailbox[int](e, "reqs")
	cleanups := 0
	for i := 0; i < 5; i++ {
		e.SpawnDaemon("server", func(p *Proc) {
			defer func() { cleanups++ }()
			for {
				box.Get(p)
			}
		})
	}
	e.Spawn("client", func(p *Proc) { box.Put(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if cleanups != 5 {
		t.Errorf("%d daemon cleanups ran, want 5 (goroutines must exit)", cleanups)
	}
	// Idempotent.
	e.Shutdown()
}

func TestShutdownRunsDeferredCleanupsThatBlock(t *testing.T) {
	// A process whose deferred cleanup itself parks (sleeps) must still be
	// unwound to completion.
	e := NewEngine()
	box := NewMailbox[int](e, "reqs")
	done := false
	e.SpawnDaemon("server", func(p *Proc) {
		defer func() {
			defer func() { recover() }() // the nested park re-panics
			p.Sleep(Millisecond)
			done = true
		}()
		for {
			box.Get(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if done {
		t.Log("cleanup completed its sleep (not required, parks may unwind)")
	}
	if e.Live() != 0 {
		t.Errorf("%d live processes after shutdown", e.Live())
	}
}

func TestShutdownSkipsUnstartedProcesses(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("never", func(p *Proc) { ran = true })
	// Shutdown before Run: the process must exit without running.
	e.Shutdown()
	if ran {
		t.Error("process body ran during shutdown")
	}
	if e.Live() != 0 {
		t.Errorf("%d live processes after shutdown", e.Live())
	}
}

func TestDaemonChildrenAreWaitedFor(t *testing.T) {
	// Handlers spawned by a daemon are ordinary processes: the clock must
	// advance through their work even after the workload processes finish.
	e := NewEngine()
	reqs := NewMailbox[int](e, "reqs")
	var handled Time
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			reqs.Get(p)
			p.Spawn("handler", func(h *Proc) {
				h.Sleep(10 * Millisecond)
				handled = h.Now()
			})
		}
	})
	e.Spawn("client", func(p *Proc) { reqs.Put(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 10*Millisecond {
		t.Errorf("handler finished at %v, want 10ms", handled)
	}
}
