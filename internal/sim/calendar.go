package sim

import (
	"math/bits"
	"sort"
)

// calendarQueue is a Brown-style calendar queue: events hash into buckets
// by timestamp (one bucket spans `width` of simulated time; the bucket
// array wraps like the days of a year), each bucket stays sorted, and pop
// scans forward from the current bucket. With a width near the mean event
// spacing, push and pop are O(1) amortized — against the O(log n) heap
// this is what keeps per-event cost flat as runs grow to thousands of
// nodes and millions of queued events.
//
// Ordering contract: pop returns events in exactly the same (at, seq)
// order as the binary heap. The scan is exhaustive over one full year
// before falling back to a global minimum search, and the year windows
// partition time precisely, so the first in-window head found is the
// global minimum (heap_test.go cross-checks this against eventHeap on
// randomized schedules). Bucket-count and width adaptation only move
// events between buckets; they can never reorder a pop.
type calendarQueue struct {
	buckets [][]event
	heads   []int // per-bucket index of the first pending event
	mask    int   // len(buckets)-1; bucket count is a power of two
	width   Time  // simulated time spanned by one bucket; a power of two
	shift   uint  // log2(width): bucketOf shifts instead of dividing
	n       int

	// cur/curTop are the scan cursor: bucket cur's current window is
	// [curTop-width, curTop). Every pending event's timestamp falls in the
	// current or a later window (pushes are never in the past), which is
	// what makes the forward scan exact.
	cur    int
	curTop Time

	// Occupancy thresholds triggering a resize.
	growAt, shrinkAt int
}

const (
	calMinBuckets = 64
	// calInitWidth only matters until the first resize samples the real
	// event spacing; microsecond-scale matches the simulator's NIC/disk
	// service times.
	calInitWidth = Time(4 * Microsecond)
	// calSample bounds the resize-time width estimation work.
	calSample = 256
)

func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{}
	q.setWidth(calInitWidth)
	q.setSize(calMinBuckets)
	q.curTop = q.width
	return q
}

// setWidth rounds w up to a power of two and stores it with its log. The
// rounding costs nothing in calendar terms — any width is correct, and
// estimates are approximate anyway — and turns the per-event bucket
// computation from a 64-bit division into a shift.
func (q *calendarQueue) setWidth(w Time) {
	q.shift = uint(bits.Len64(uint64(w - 1)))
	q.width = 1 << q.shift
}

func (q *calendarQueue) Len() int { return q.n }

// due is O(1): an event at exactly `at` is the global minimum (nothing is
// ever pending in the past), so it must head its home bucket, whose
// sorted order puts it at heads[b].
func (q *calendarQueue) due(at Time) bool {
	b := q.bucketOf(at)
	h := q.heads[b]
	return h < len(q.buckets[b]) && q.buckets[b][h].at == at
}

func (q *calendarQueue) setSize(nb int) {
	q.buckets = make([][]event, nb)
	q.heads = make([]int, nb)
	q.mask = nb - 1
	q.growAt = 2 * nb
	q.shrinkAt = nb / 2
	if nb == calMinBuckets {
		q.shrinkAt = 0
	}
}

func (q *calendarQueue) bucketOf(at Time) int {
	return int(uint64(at)>>q.shift) & q.mask
}

func (q *calendarQueue) push(ev event) {
	if q.n >= q.growAt {
		q.resize(2 * len(q.buckets))
	}
	q.n++
	q.insert(ev)
}

func (q *calendarQueue) insert(ev event) {
	b := q.bucketOf(ev.at)
	bk := q.buckets[b]
	// Append fast path: in-order arrival within a bucket. Equal timestamps
	// always take it (seq grows monotonically), so bursts of same-instant
	// events — the common case on RPC hot paths — cost one append.
	if k := len(bk); k == q.heads[b] || !before(&ev, &bk[k-1]) {
		q.buckets[b] = append(bk, ev)
		return
	}
	lo, hi := q.heads[b], len(bk)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if before(&ev, &bk[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Shift the shorter side. Out-of-order arrivals usually slot near the
	// front of a bucket dominated by a same-instant burst, and popped
	// events leave dead slots before heads[b] — shifting the short prefix
	// left into that space beats sliding the whole burst right.
	if h := q.heads[b]; h > 0 && lo-h < len(bk)-lo {
		copy(bk[h-1:], bk[h:lo])
		bk[lo-1] = ev
		q.heads[b] = h - 1
		return
	}
	bk = append(bk, event{})
	copy(bk[lo+1:], bk[lo:])
	bk[lo] = ev
	q.buckets[b] = bk
}

// pop removes and returns the minimum event. It must only be called when
// Len() > 0 (the engine's dispatch loop guarantees this).
func (q *calendarQueue) pop() event {
	for {
		i, top := q.cur, q.curTop
		for scanned := 0; scanned <= q.mask; scanned++ {
			if h := q.heads[i]; h < len(q.buckets[i]) {
				if ev := &q.buckets[i][h]; ev.at < top {
					q.cur, q.curTop = i, top
					return q.take(i)
				}
			}
			i++
			if i > q.mask {
				i = 0
			}
			top += q.width
		}
		// Nothing due within one full year (sparse queue, e.g. a lone
		// far-future fault timer): jump the cursor to the earliest event
		// and rescan. The rescan then hits it at offset zero.
		q.jumpToMin()
	}
}

func (q *calendarQueue) take(b int) event {
	h := q.heads[b]
	ev := q.buckets[b][h]
	q.buckets[b][h] = event{} // drop object references for the GC
	h++
	if h == len(q.buckets[b]) {
		q.buckets[b] = q.buckets[b][:0]
		h = 0
	}
	q.heads[b] = h
	q.n--
	if q.n < q.shrinkAt {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

// jumpToMin positions the cursor on the globally earliest pending event.
// O(buckets), but only reached when a full year scan found nothing — the
// queue is sparse relative to its width, so this amortizes away.
func (q *calendarQueue) jumpToMin() {
	var min *event
	minB := -1
	for b := range q.buckets {
		if h := q.heads[b]; h < len(q.buckets[b]) {
			if ev := &q.buckets[b][h]; min == nil || before(ev, min) {
				min, minB = ev, b
			}
		}
	}
	q.cur = minB
	q.curTop = (min.at/q.width + 1) * q.width
}

// resize rebuilds the calendar with a new bucket count and a width
// re-estimated from the current population, then repositions the cursor.
// Everything here is deterministic (bucket-order traversal, median of a
// stride sample), though it would be harmless if it were not: layout
// never influences pop order, only speed.
func (q *calendarQueue) resize(nb int) {
	old := q.buckets
	oldHeads := q.heads
	oldStart := q.curTop - q.width
	q.setWidth(q.estimateWidth())
	q.setSize(nb)
	for b, bk := range old {
		for i := oldHeads[b]; i < len(bk); i++ {
			q.insert(bk[i])
		}
	}
	// Re-anchor the cursor on the window containing the old window start.
	// NOT jumpToMin: the pending minimum can sit ahead of the engine clock,
	// and a later push between the clock and that minimum — perfectly legal
	// — would land behind a min-anchored cursor and pop out of order. The
	// old window start is ≤ the engine clock (pop keeps it that way), so
	// every pending event and every future push stays at or ahead of it.
	q.cur = q.bucketOf(oldStart)
	q.curTop = (oldStart/q.width + 1) * q.width
}

// estimateWidth returns a bucket width near 3× the median gap between
// pending event timestamps, from a stride sample (Brown's rule: a few
// events per bucket keeps both the insert sort and the pop scan O(1)).
func (q *calendarQueue) estimateWidth() Time {
	if q.n < 2 {
		return q.width
	}
	stride := q.n/calSample + 1
	sample := make([]Time, 0, calSample+1)
	idx := 0
	for b, bk := range q.buckets {
		for i := q.heads[b]; i < len(bk); i++ {
			if idx%stride == 0 {
				sample = append(sample, bk[i].at)
			}
			idx++
		}
	}
	if len(sample) < 2 {
		return q.width
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	gaps := make([]Time, 0, len(sample)-1)
	for i := 1; i < len(sample); i++ {
		if g := sample[i] - sample[i-1]; g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return q.width // all sampled events simultaneous: keep the width
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	w := 3 * gaps[len(gaps)/2]
	// Same-instant bursts (RPC hot paths) hide behind the positive-gap
	// median: thousands of simultaneous events contribute no gap, so the
	// median overestimates true spacing and buckets overfill, turning the
	// sorted insert into a linear shift. The population-average gap
	// (span/n) counts every event; take the narrower estimate. The median
	// still protects against the opposite failure, a lone far-future
	// outlier stretching the span.
	if span := sample[len(sample)-1] - sample[0]; span > 0 {
		if avg := 3 * span / Time(q.n-1); avg < w {
			w = avg
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}
