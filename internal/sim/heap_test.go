package sim

import "testing"

// TestEventHeapOrdering drives the d-ary heap with deterministic pseudo-
// random timestamps (including many ties) and checks that pop returns
// events in strict (at, seq) order — the invariant the engine's
// determinism rests on.
func TestEventHeapOrdering(t *testing.T) {
	const n = 10_000
	h := newEventHeap()
	rng := uint64(42)
	for j := 0; j < n; j++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		// Only 64 distinct timestamps, so seq tie-breaking is exercised hard.
		h.push(event{at: Time(rng % 64), seq: uint64(j)})
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	prev := h.pop()
	for j := 1; j < n; j++ {
		cur := h.pop()
		if cur.at < prev.at || (cur.at == prev.at && cur.seq <= prev.seq) {
			t.Fatalf("pop %d out of order: (%v, %d) after (%v, %d)",
				j, cur.at, cur.seq, prev.at, prev.seq)
		}
		prev = cur
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after draining: Len = %d", h.Len())
	}
}

// TestEventHeapInterleaved mixes pushes and pops so the heap repeatedly
// shrinks and regrows, the engine's steady-state pattern.
func TestEventHeapInterleaved(t *testing.T) {
	h := newEventHeap()
	var seq uint64
	var popped []event
	rng := uint64(7)
	for round := 0; round < 100; round++ {
		for j := 0; j < 37; j++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			seq++
			h.push(event{at: Time(rng % 16), seq: seq})
		}
		for j := 0; j < 29; j++ {
			popped = append(popped, h.pop())
		}
	}
	for h.Len() > 0 {
		popped = append(popped, h.pop())
	}
	// Within the drained tail, order must be non-decreasing in (at, seq);
	// across interleaved rounds only the heap-local invariant applies, so
	// check each pop against what remained: simplest is a full re-sort
	// comparison on the tail after the last push.
	tail := popped[len(popped)-(100*37-100*29):]
	for i := 1; i < len(tail); i++ {
		a, b := tail[i-1], tail[i]
		if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
			t.Fatalf("tail pop %d out of order: (%v, %d) after (%v, %d)",
				i, b.at, b.seq, a.at, a.seq)
		}
	}
}
