package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestMailboxPutThenGet(t *testing.T) {
	e := NewEngine()
	box := NewMailbox[string](e, "box")
	var got string
	e.Spawn("producer", func(p *Proc) { box.Put("hello") })
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(Millisecond)
		got = box.Get(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Errorf("got %q", got)
	}
}

func TestMailboxGetBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	box := NewMailbox[int](e, "box")
	var at Time
	e.Spawn("consumer", func(p *Proc) {
		box.Get(p)
		at = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(3 * Millisecond)
		box.Put(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*Millisecond {
		t.Errorf("consumer resumed at %v, want 3ms", at)
	}
}

func TestMailboxFIFOAmongMessages(t *testing.T) {
	e := NewEngine()
	box := NewMailbox[int](e, "box")
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			box.Put(i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(Millisecond)
		for i := 0; i < 5; i++ {
			got = append(got, box.Get(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("messages out of order: %v", got)
		}
	}
}

func TestMailboxFIFOAmongWaiters(t *testing.T) {
	e := NewEngine()
	box := NewMailbox[int](e, "box")
	recv := make(map[int]int) // waiter -> message
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i)) // deterministic wait order
			recv[i] = box.Get(p)
		})
	}
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(Millisecond)
		for i := 0; i < 3; i++ {
			box.Put(100 + i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if recv[i] != 100+i {
			t.Errorf("waiter %d got %d, want %d (FIFO handoff)", i, recv[i], 100+i)
		}
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine()
	box := NewMailbox[int](e, "box")
	if _, ok := box.TryGet(); ok {
		t.Error("TryGet on empty box returned ok")
	}
	box.Put(7)
	v, ok := box.TryGet()
	if !ok || v != 7 {
		t.Errorf("TryGet = (%d,%v), want (7,true)", v, ok)
	}
	if box.Len() != 0 {
		t.Errorf("Len = %d after drain", box.Len())
	}
}

func TestSignalFireBeforeWait(t *testing.T) {
	e := NewEngine()
	s := NewSignal[int](e, "done")
	var got int
	e.Spawn("firer", func(p *Proc) { s.Fire(42) })
	e.Spawn("waiter", func(p *Proc) {
		p.Sleep(Millisecond)
		got = s.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestSignalWaitBeforeFire(t *testing.T) {
	e := NewEngine()
	s := NewSignal[string](e, "done")
	var got string
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		got = s.Wait(p)
		at = p.Now()
	})
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		s.Fire("ok")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ok" || at != 5*Millisecond {
		t.Errorf("got %q at %v", got, at)
	}
}

func TestSignalMultipleWaiters(t *testing.T) {
	e := NewEngine()
	s := NewSignal[int](e, "done")
	count := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Wait(p)
			count++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(Millisecond)
		s.Fire(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("%d waiters resumed, want 4", count)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	e := NewEngine()
	s := NewSignal[int](e, "once")
	e.Spawn("p", func(p *Proc) {
		s.Fire(1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double fire")
			}
		}()
		s.Fire(2)
	})
	_ = e.Run()
}

func TestWaitAllJoinsForks(t *testing.T) {
	e := NewEngine()
	var sigs []*Signal[int]
	e.Spawn("parent", func(p *Proc) {
		for i := 0; i < 5; i++ {
			i := i
			s := NewSignal[int](e, fmt.Sprintf("child%d", i))
			sigs = append(sigs, s)
			p.Spawn(fmt.Sprintf("c%d", i), func(c *Proc) {
				c.Sleep(Time(5-i) * Millisecond)
				s.Fire(i * i)
			})
		}
		vals := WaitAll(p, sigs)
		for i, v := range vals {
			if v != i*i {
				t.Errorf("child %d returned %d, want %d", i, v, i*i)
			}
		}
		if p.Now() != 5*Millisecond {
			t.Errorf("join completed at %v, want 5ms (slowest child)", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: every message Put into a mailbox is Got exactly once, and the
// multiset of received values equals the multiset sent.
func TestMailboxConservationProperty(t *testing.T) {
	prop := func(vals []int32) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		e := NewEngine()
		box := NewMailbox[int32](e, "box")
		sent := make(map[int32]int)
		got := make(map[int32]int)
		for i, v := range vals {
			v := v
			sent[v]++
			e.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
				p.Sleep(Time(i%13) * Microsecond)
				box.Put(v)
			})
		}
		e.Spawn("consumer", func(p *Proc) {
			for range vals {
				got[box.Get(p)]++
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(sent) != len(got) {
			return false
		}
		for k, n := range sent {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
