package sim

import "testing"

// The calendar queue's contract is byte-for-byte the heap's: identical
// push sequences must produce identical pop sequences. These tests drive
// both implementations with the same deterministic schedules — including
// the regimes where a calendar queue's bookkeeping can go wrong: dense
// same-timestamp bursts (append fast path + seq tie-breaks), far-future
// outliers (full-year scan misses → jumpToMin), and population swings
// across the grow/shrink thresholds.

// calRng is the tests' deterministic stream (same LCG as heap_test.go).
type calRng uint64

func (r *calRng) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 16
}

// crossCheck feeds the same push/pop schedule to a fresh heap and a fresh
// calendar and fails on the first divergence. Pushes respect the engine's
// invariant — never earlier than the last popped timestamp — because the
// calendar's forward scan is only exact under it.
func crossCheck(t *testing.T, seed uint64, rounds, pushes, pops int, spread func(r *calRng) Time) {
	t.Helper()
	h := newEventHeap()
	c := newCalendarQueue()
	rng := calRng(seed)
	var seq uint64
	var now Time
	for round := 0; round < rounds; round++ {
		for j := 0; j < pushes; j++ {
			seq++
			ev := event{at: now + spread(&rng), seq: seq}
			h.push(ev)
			c.push(ev)
		}
		for j := 0; j < pops && h.Len() > 0; j++ {
			want := h.pop()
			got := c.pop()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("round %d pop %d: calendar returned (%v, %d), heap (%v, %d)",
					round, j, got.at, got.seq, want.at, want.seq)
			}
			now = want.at
		}
	}
	for h.Len() > 0 {
		want := h.pop()
		got := c.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("drain: calendar returned (%v, %d), heap (%v, %d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("calendar not empty after drain: Len = %d", c.Len())
	}
}

func TestCalendarMatchesHeapDense(t *testing.T) {
	// Timestamps cluster in a handful of instants near now: the RPC hot
	// path's shape. Exercises the append fast path and seq tie-breaking.
	crossCheck(t, 1, 200, 41, 37, func(r *calRng) Time {
		return Time(r.next() % 8)
	})
}

func TestCalendarMatchesHeapMixedScales(t *testing.T) {
	// Delays spanning nine orders of magnitude: sub-width, multi-bucket,
	// and beyond-a-year offsets interleave, so pops alternate between the
	// in-window fast path and jumpToMin.
	crossCheck(t, 2, 150, 23, 19, func(r *calRng) Time {
		shift := r.next() % 30
		return Time(r.next() % (1 << shift))
	})
}

func TestCalendarMatchesHeapGrowShrink(t *testing.T) {
	// Population swings from 0 to ~4000 and back several times, crossing
	// the grow and shrink thresholds repeatedly mid-schedule.
	h := newEventHeap()
	c := newCalendarQueue()
	rng := calRng(3)
	var seq uint64
	var now Time
	for cycle := 0; cycle < 4; cycle++ {
		for j := 0; j < 4000; j++ {
			seq++
			ev := event{at: now + Time(rng.next()%100_000), seq: seq}
			h.push(ev)
			c.push(ev)
		}
		for h.Len() > 0 {
			want := h.pop()
			got := c.pop()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("cycle %d: calendar returned (%v, %d), heap (%v, %d)",
					cycle, got.at, got.seq, want.at, want.seq)
			}
			now = want.at
		}
	}
}

func TestCalendarSparseFarFuture(t *testing.T) {
	// A lone far-future event (a fault timer years of widths away) must be
	// found by jumpToMin, and a nearer event pushed afterwards must still
	// pop first.
	c := newCalendarQueue()
	c.push(event{at: Time(1) << 40, seq: 1})
	c.push(event{at: 100, seq: 2})
	if ev := c.pop(); ev.seq != 2 {
		t.Fatalf("near event did not pop first: got seq %d", ev.seq)
	}
	if ev := c.pop(); ev.seq != 1 {
		t.Fatalf("far event lost: got seq %d", ev.seq)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after draining", c.Len())
	}
}

// TestEngineQueueSelection pins the wiring: the default engine runs the
// calendar, ClassicQueue restores the heap, and both implement eventQueue.
func TestEngineQueueSelection(t *testing.T) {
	if _, ok := NewEngine().queue.(*calendarQueue); !ok {
		t.Fatalf("default engine queue is %T, want *calendarQueue", NewEngine().queue)
	}
	e := NewEngineWith(EngineOpts{ClassicQueue: true})
	if _, ok := e.queue.(*eventHeap); !ok {
		t.Fatalf("ClassicQueue engine queue is %T, want *eventHeap", e.queue)
	}
}
