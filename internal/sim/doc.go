// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// A simulation is driven by an Engine that owns a virtual clock and an
// event queue. Work is expressed as processes: ordinary Go functions that
// run on their own goroutines but execute strictly one at a time, handing
// control back to the engine whenever they block on a simulated operation
// (Sleep, Resource.Acquire, Mailbox.Get, Signal.Wait). Because exactly one
// process runs at any instant and ties in the event queue are broken by
// insertion order, a simulation is fully deterministic: the same program
// produces the same event trace and the same final clock on every run.
//
// The engine models time as integer nanoseconds (Time). Physical resources
// with finite capacity (NICs, disks, CPUs) are modeled by Resource, a FIFO
// counting semaphore. Message channels between processes are modeled by
// Mailbox, an unbounded FIFO queue with blocking receive. One-shot
// completion notifications are modeled by Signal.
package sim
