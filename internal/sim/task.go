package sim

// This file is the dispatch fast path: task events that run inline on the
// engine goroutine instead of waking a process goroutine.
//
// A classic event dispatch costs two channel rendezvous (engine→process,
// process→engine) and two goroutine context switches. Most events in an
// I/O-bound simulation do not need a process stack at all: a NIC finishing
// a timed segment, a resource grant, a mailbox handoff. The fast path lets
// such steps run as a Tasker callback dispatched inline, falling back to a
// full process switch only where user code must run.
//
// # The event-parity invariant
//
// Fast-path consumers (simnet transfer chains, pfs request handlers) are
// written so that a simulation produces byte-identical outputs — event
// count, event timing, traffic counters, data read — whether the fast path
// is enabled or not. The discipline that guarantees this is one-for-one
// event mapping: every point where the classic path schedules a process
// wake-up, the fast path schedules exactly one task event at the same
// (at, seq) position, and vice versa. A task event advances the clock,
// increments the event count, and participates in foreground accounting
// exactly like a process event; only the dispatch mechanism differs.
// DESIGN.md §11 walks through the mapping for one PFS RPC.

// Tasker is an inline event handler. RunTask executes on the engine
// goroutine when the task's event dispatches; it must not block (no
// park-style waits) but may schedule further tasks, resume parked
// processes, fire signals, and put into mailboxes.
type Tasker interface{ RunTask() }

// Named is anything with a lazily formatted diagnostic name. Parked
// processes record the object they block on as a Named so hot paths never
// format a name that only a deadlock report would read.
type Named interface{ Name() string }

// ScheduleTask enqueues t to run after d simulated time (clamped at zero).
// The event counts as foreground work, exactly like a scheduled process
// wake-up: Run keeps dispatching until it fires.
func (e *Engine) ScheduleTask(d Time, t Tasker) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.fg++
	e.pushEvent(event{at: e.now + d, seq: e.seq, who: t})
}

// ResumeIn schedules a wake-up for p after d simulated time (clamped at
// zero). It is the task-side half of a park/resume pair: a process calls
// Park after arranging — via a task chain — for exactly one ResumeIn to
// reach it. Resuming a process that is not parked, or scheduling a second
// wake-up for one, corrupts the simulation; only fast-path chains should
// call this.
func (e *Engine) ResumeIn(d Time, p *Proc) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, p)
}

// FastDispatch reports whether fast-path consumers should use inline task
// chains. The engine itself dispatches task events in either mode; this
// flag only tells the layers above which construction to prefer.
func (e *Engine) FastDispatch() bool { return !e.opts.ClassicDispatch }
