package sim

import "testing"

// Bursty same-at pushes with occasional long delays force narrow widths
// and frequent resizes — the regime that once let resize park the cursor
// on a pending minimum ahead of the clock, so a later (legal) push landed
// behind it and popped out of order. Regression coverage for the
// resize-cursor re-anchoring in calendar.go.
func TestCalendarStressBursty(t *testing.T) {
	h := newEventHeap()
	c := newCalendarQueue()
	rng := calRng(99)
	var seq uint64
	var now Time
	pending := 0
	for round := 0; round < 20000; round++ {
		np := int(rng.next()%4) + 1
		for j := 0; j < np; j++ {
			seq++
			var d Time
			switch rng.next() % 10 {
			case 0:
				d = Time(rng.next() % 200000) // occasional long delay
			case 1, 2, 3:
				d = 0 // same-instant burst
			default:
				d = Time(rng.next() % 300) // short service times
			}
			ev := event{at: now + d, seq: seq}
			h.push(ev)
			c.push(ev)
			pending++
		}
		np2 := int(rng.next() % 4)
		for j := 0; j < np2 && pending > 0; j++ {
			want := h.pop()
			got := c.pop()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("round %d: calendar (%v,%d) heap (%v,%d) width=%v nb=%d", round, got.at, got.seq, want.at, want.seq, c.width, len(c.buckets))
			}
			now = want.at
			pending--
		}
	}
	for h.Len() > 0 {
		want := h.pop()
		got := c.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("drain: calendar (%v,%d) heap (%v,%d)", got.at, got.seq, want.at, want.seq)
		}
	}
}
