package sim

import (
	"errors"
	"testing"
)

func TestAfterFuncFiresAtDeadline(t *testing.T) {
	eng := NewEngine()
	var firedAt Time = -1
	eng.Spawn("spin", func(p *Proc) { p.Sleep(10 * Millisecond) })
	eng.AfterFunc(3*Millisecond, func() { firedAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt != 3*Millisecond {
		t.Fatalf("timer fired at %v, want 3ms", firedAt)
	}
}

func TestAfterFuncStop(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Spawn("spin", func(p *Proc) { p.Sleep(10 * Millisecond) })
	tm := eng.AfterFunc(3*Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer still fired")
	}
	if eng.Now() != 10*Millisecond {
		t.Fatalf("clock at %v, want 10ms", eng.Now())
	}
}

// A pending foreground timer is itself foreground work: Run keeps going
// until it fires even with no live processes.
func TestAfterFuncKeepsRunAlive(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.AfterFunc(5*Millisecond, func() { fired = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("foreground timer did not fire")
	}
	if eng.Now() != 5*Millisecond {
		t.Fatalf("clock at %v, want 5ms", eng.Now())
	}
}

// A daemon timer must not extend a run past the workload: once only daemon
// timers remain queued, Run returns with the clock at the workload's end.
func TestAfterFuncDaemonDoesNotExtendRun(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Spawn("work", func(p *Proc) { p.Sleep(2 * Millisecond) })
	eng.AfterFuncDaemon(time100ms, func() { fired = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("daemon timer fired after the workload drained")
	}
	if eng.Now() != 2*Millisecond {
		t.Fatalf("clock at %v, want 2ms (daemon timer must not advance it)", eng.Now())
	}
	// A later run that outlives the timer's deadline does dispatch it.
	eng.Spawn("work2", func(p *Proc) { p.Sleep(time100ms) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("daemon timer did not fire during the next, longer run")
	}
}

const time100ms = 100 * Millisecond

func TestMailboxGetTimeoutExpires(t *testing.T) {
	eng := NewEngine()
	mb := NewMailbox[int](eng, "box")
	var ok bool
	var at Time
	eng.Spawn("recv", func(p *Proc) {
		_, ok = mb.GetTimeout(p, 4*Millisecond)
		at = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("GetTimeout reported a message on an empty mailbox")
	}
	if at != 4*Millisecond {
		t.Fatalf("timed out at %v, want 4ms", at)
	}
}

func TestMailboxGetTimeoutDelivers(t *testing.T) {
	eng := NewEngine()
	mb := NewMailbox[int](eng, "box")
	var got int
	var ok bool
	eng.Spawn("recv", func(p *Proc) {
		got, ok = mb.GetTimeout(p, 10*Millisecond)
	})
	eng.Spawn("send", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		mb.Put(42)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 42 {
		t.Fatalf("got (%d,%v), want (42,true)", got, ok)
	}
}

// A message put after the timeout must not be lost and must not wake the
// abandoned receiver twice: it stays queued for the next Get.
func TestMailboxLateMessageAfterTimeout(t *testing.T) {
	eng := NewEngine()
	mb := NewMailbox[int](eng, "box")
	var first, second int
	var firstOK bool
	eng.Spawn("recv", func(p *Proc) {
		first, firstOK = mb.GetTimeout(p, 1*Millisecond)
		p.Sleep(5 * Millisecond) // late message arrives while we are away
		second = mb.Get(p)
	})
	eng.Spawn("send", func(p *Proc) {
		p.Sleep(3 * Millisecond)
		mb.Put(7)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if firstOK {
		t.Fatalf("first receive got %d, want timeout", first)
	}
	if second != 7 {
		t.Fatalf("late message lost: got %d, want 7", second)
	}
}

// Two receivers, the first of which times out: a single Put must skip the
// dead waiter and deliver to the live one.
func TestMailboxPutSkipsDeadWaiter(t *testing.T) {
	eng := NewEngine()
	mb := NewMailbox[int](eng, "box")
	var live int
	eng.Spawn("short", func(p *Proc) {
		if _, ok := mb.GetTimeout(p, 1*Millisecond); ok {
			t.Error("short receiver should have timed out")
		}
	})
	eng.Spawn("long", func(p *Proc) {
		live = mb.Get(p)
	})
	eng.Spawn("send", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		mb.Put(9)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if live != 9 {
		t.Fatalf("live receiver got %d, want 9", live)
	}
}

// Delivery and timeout scheduled at the same instant must produce exactly
// one wake, with delivery winning when its Put ran first.
func TestMailboxTimeoutTiesWithDelivery(t *testing.T) {
	eng := NewEngine()
	mb := NewMailbox[int](eng, "box")
	var got int
	var ok bool
	eng.Spawn("recv", func(p *Proc) {
		got, ok = mb.GetTimeout(p, 2*Millisecond)
		p.Sleep(10 * Millisecond) // survive past any stray double-wake
	})
	eng.Spawn("send", func(p *Proc) {
		p.Sleep(2 * Millisecond) // same instant as the timeout
		mb.Put(5)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The timer was scheduled before the sender's wake, so at the shared
	// instant the timeout dispatches first: deterministic timeout.
	if ok {
		t.Fatalf("got (%d,%v), want timeout at the tie", got, ok)
	}
	if v, live := mb.TryGet(); !live || v != 5 {
		t.Fatalf("tied message lost: got (%d,%v)", v, live)
	}
}

func TestSignalFireOnce(t *testing.T) {
	eng := NewEngine()
	sig := NewSignal[error](eng, "done")
	sentinel := errors.New("late")
	eng.Spawn("race", func(p *Proc) {
		if !sig.FireOnce(nil) {
			t.Error("first FireOnce lost")
		}
		if sig.FireOnce(sentinel) {
			t.Error("second FireOnce won")
		}
	})
	var got error = sentinel
	eng.Spawn("wait", func(p *Proc) { got = sig.Wait(p) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("waiter observed %v, want the first fire's nil", got)
	}
}

// The retry-path hazard from the fault-injection work: a timeout fires the
// completion signal, then the original reply arrives late. With Fire this
// would panic the engine; FireOnce drops the late completion.
func TestSignalLateCompletionAfterTimeout(t *testing.T) {
	eng := NewEngine()
	done := NewSignal[string](eng, "req")
	eng.AfterFunc(1*Millisecond, func() { done.FireOnce("timeout") })
	eng.Spawn("slow-reply", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		if done.FireOnce("reply") {
			t.Error("late reply won over the timeout")
		}
	})
	var got string
	eng.Spawn("wait", func(p *Proc) { got = done.Wait(p) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "timeout" {
		t.Fatalf("waiter observed %q, want \"timeout\"", got)
	}
}
