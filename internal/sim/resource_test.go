package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestResourceExclusiveSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "nic", 1)
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, 1, 10*Millisecond)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 30*Millisecond {
		t.Errorf("clock %v, want 30ms (serialized)", e.Now())
	}
	if r.BusyTime() != 30*Millisecond {
		t.Errorf("busy %v, want 30ms", r.BusyTime())
	}
}

func TestResourceMultiCoreOverlaps(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 2)
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, 1, 10*Millisecond)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 20*Millisecond {
		t.Errorf("clock %v, want 20ms (2-way overlap)", e.Now())
	}
}

func TestResourceFIFOGrantOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Time(i)) // stagger arrival by 1ns to fix the queue order
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(Millisecond)
			r.Release(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want arrival order", order)
		}
	}
}

func TestResourceHeadOfLineBlocking(t *testing.T) {
	// A big request at the head must block a later small request even
	// though the small one would fit, preserving FIFO fairness.
	e := NewEngine()
	r := NewResource(e, "res", 4)
	var order []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(10 * Millisecond)
		r.Release(3)
	})
	e.Spawn("big", func(p *Proc) {
		p.Sleep(Millisecond)
		r.Acquire(p, 4)
		order = append(order, "big")
		r.Release(4)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" {
		t.Errorf("order %v, want big before small", order)
	}
}

func TestResourceNeverOversubscribed(t *testing.T) {
	e := NewEngine()
	const capacity = 3
	r := NewResource(e, "res", capacity)
	maxSeen := int64(0)
	for i := 0; i < 20; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Time(i%7) * Microsecond)
			n := int64(i%3 + 1)
			r.Acquire(p, n)
			if r.InUse() > maxSeen {
				maxSeen = r.InUse()
			}
			p.Sleep(Millisecond)
			r.Release(n)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxSeen > capacity {
		t.Errorf("observed %d units in use, capacity %d", maxSeen, capacity)
	}
	if r.InUse() != 0 {
		t.Errorf("leaked %d units", r.InUse())
	}
}

func TestResourceAcquireOverCapacityPanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "res", 1)
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic acquiring over capacity")
			}
		}()
		r.Acquire(p, 2)
	})
	_ = e.Run()
}

func TestResourceReleaseTooManyPanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "res", 1)
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic releasing more than held")
			}
		}()
		r.Release(1)
	})
	_ = e.Run()
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero capacity")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

func TestResourceWaitAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	// First user holds 10ms; second arrives at 2ms and waits 8ms; third
	// arrives at 4ms and waits 16ms (behind both).
	e.Spawn("a", func(p *Proc) { r.Use(p, 1, 10*Millisecond) })
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		r.Use(p, 1, 10*Millisecond)
	})
	e.Spawn("c", func(p *Proc) {
		p.Sleep(4 * Millisecond)
		r.Use(p, 1, 10*Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.WaitTime(); got != 24*Millisecond {
		t.Errorf("WaitTime = %v, want 24ms (8 + 16)", got)
	}
	if r.Waits() != 2 {
		t.Errorf("Waits = %d, want 2", r.Waits())
	}
}

func TestUncontendedResourceNeverWaits(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "res", 4)
	for i := 0; i < 4; i++ {
		e.Spawn("p", func(p *Proc) { r.Use(p, 1, Millisecond) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.WaitTime() != 0 || r.Waits() != 0 {
		t.Errorf("uncontended resource accrued wait %v/%d", r.WaitTime(), r.Waits())
	}
}

// Property: for any workload of exclusive users, total time equals the sum
// of service times (perfect serialization, no lost or duplicated grants).
func TestResourceSerializationProperty(t *testing.T) {
	prop := func(durs []uint16) bool {
		if len(durs) > 50 {
			durs = durs[:50]
		}
		e := NewEngine()
		r := NewResource(e, "res", 1)
		var want Time
		for i, d := range durs {
			d := Time(d) * Microsecond
			want += d
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				r.Use(p, 1, d)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == want && r.Grants() == uint64(len(durs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
