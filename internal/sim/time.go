package sim

import "fmt"

// Time is a point in simulated time, or a duration between two such
// points, measured in nanoseconds. The zero Time is the start of the
// simulation.
type Time int64

// Convenient duration units, in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// TransferTime returns the time needed to move size bytes over a channel
// sustaining bytesPerSec. A non-positive rate yields zero time, which lets
// callers disable a cost component by zeroing its rate.
func TransferTime(size int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 || size <= 0 {
		return 0
	}
	return Time(float64(size) / bytesPerSec * float64(Second))
}
