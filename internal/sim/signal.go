package sim

// Signal is a one-shot completion notification carrying an optional value.
// Any number of processes may Wait; once Fire is called they all resume
// (in wait order) and later Waits return immediately. Firing twice panics:
// a Signal represents a single event.
type Signal[T any] struct {
	eng     *Engine
	name    string
	fired   bool
	val     T
	waiters []*Proc
}

// NewSignal creates an unfired signal. The name is used in deadlock
// diagnostics.
func NewSignal[T any](eng *Engine, name string) *Signal[T] {
	return &Signal[T]{eng: eng, name: name}
}

// Name returns the signal's diagnostic name.
func (s *Signal[T]) Name() string { return s.name }

// Fired reports whether Fire has been called.
func (s *Signal[T]) Fired() bool { return s.fired }

// Fire marks the signal complete with value v and wakes all waiters.
func (s *Signal[T]) Fire(v T) {
	if s.fired {
		panic("sim: signal " + s.name + " fired twice")
	}
	s.fired = true
	s.val = v
	for _, p := range s.waiters {
		s.eng.schedule(s.eng.now, p)
	}
	s.waiters = nil
}

// FireOnce marks the signal complete if it has not fired yet and reports
// whether this call won. Unlike Fire, a losing call is a no-op rather than
// a panic: retry paths use it so a late completion (e.g. a reply that
// arrives after its timeout already fired the signal) is dropped instead
// of tearing down the engine.
func (s *Signal[T]) FireOnce(v T) bool {
	if s.fired {
		return false
	}
	s.Fire(v)
	return true
}

// Wait blocks the process until the signal fires, then returns the fired
// value. If the signal already fired, it returns immediately.
func (s *Signal[T]) Wait(p *Proc) T {
	if s.fired {
		return s.val
	}
	s.waiters = append(s.waiters, p)
	p.park("wait", s)
	return s.val
}

// WaitAll blocks until every signal in sigs has fired and returns their
// values in order. It is the join half of a fork-join pattern.
func WaitAll[T any](p *Proc, sigs []*Signal[T]) []T {
	out := make([]T, len(sigs))
	for i, s := range sigs {
		out[i] = s.Wait(p)
	}
	return out
}
