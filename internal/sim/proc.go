package sim

// Proc is the handle a process uses to interact with the simulation. All
// Proc methods must be called from the process's own function; passing a
// Proc to another goroutine is a programming error.
type Proc struct {
	eng    *Engine
	name   string
	wake   chan struct{}
	fn     func(p *Proc)
	done   bool
	daemon bool
}

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// park returns control to the engine and blocks until the engine delivers
// the next wake-up for this process. The (verb, name) pair is recorded for
// deadlock diagnostics; keeping it as two parts avoids a string
// concatenation on every block, which the strip I/O hot paths hit millions
// of times per run.
func (p *Proc) park(verb, name string) {
	p.eng.blocked[p] = blockReason{verb: verb, name: name}
	p.eng.yield <- struct{}{}
	<-p.wake
	if p.eng.stopping {
		panic(shutdownSentinel{})
	}
}

// Sleep advances this process by d simulated time. Negative durations are
// treated as zero; a zero sleep still yields to other processes scheduled
// at the same instant (FIFO order is preserved).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p)
	p.park("sleep", "")
}

// Spawn starts a child process at the current simulated time. It is a
// convenience wrapper over Engine.Spawn.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.eng.Spawn(name, fn)
}
