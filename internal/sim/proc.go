package sim

import "strconv"

// Proc is the handle a process uses to interact with the simulation. All
// Proc methods must be called from the process's own function; passing a
// Proc to another goroutine is a programming error.
type Proc struct {
	eng    *Engine
	name   string
	id     uint64 // spawn ordinal of the current occupant, for lazy naming
	wake   chan struct{}
	fn     func(p *Proc)
	done   bool
	daemon bool

	// Parked state, kept on the Proc instead of an engine-side map so
	// dispatching an event is map-free and Shutdown can unwind processes
	// in creation order. The (verb, object) pair is only read by deadlock
	// reports; keeping the object as a Named defers name formatting off
	// the hot path entirely.
	parked bool
	rverb  string
	robj   Named
}

// Name returns the diagnostic name given at Spawn, or a lazily formatted
// "proc-<n>" for processes spawned without one. The formatting cost is
// paid only when a diagnostic actually reads the name.
func (p *Proc) Name() string {
	if p.name == "" {
		return "proc-" + strconv.FormatUint(p.id, 10)
	}
	return p.name
}

// reason formats what the process is blocked on, for deadlock reports.
func (p *Proc) reason() string {
	if p.robj == nil {
		return p.rverb
	}
	return p.rverb + " " + p.robj.Name()
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// park returns control to the engine and blocks until the engine delivers
// the next wake-up for this process. The (verb, obj) pair is recorded for
// deadlock diagnostics; obj may be nil.
func (p *Proc) park(verb string, obj Named) {
	p.parked, p.rverb, p.robj = true, verb, obj
	p.eng.yield <- struct{}{}
	<-p.wake
	if p.eng.stopping {
		panic(shutdownSentinel{})
	}
}

// Park blocks the process until a matching Engine.ResumeIn wake-up
// arrives. It is the process-side half of a fast-path chain: callers must
// have arranged, before parking, for exactly one resume to reach them
// (e.g. a simnet transfer chain that ends in ResumeIn). The (verb, obj)
// pair feeds deadlock diagnostics; obj may be nil.
func (p *Proc) Park(verb string, obj Named) { p.park(verb, obj) }

// Sleep advances this process by d simulated time. Negative durations are
// treated as zero; a zero sleep still yields to other processes scheduled
// at the same instant (FIFO order is preserved).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p)
	p.park("sleep", nil)
}

// Spawn starts a child process at the current simulated time. It is a
// convenience wrapper over Engine.Spawn.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.eng.Spawn(name, fn)
}
