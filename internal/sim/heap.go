package sim

// event is a scheduled wake-up for a process (*Proc), a pending AfterFunc
// callback (*Timer), or an inline fast-path callback (any other Tasker);
// the dispatch loop type-switches on who. One interface instead of three
// typed fields keeps the struct at 32 bytes with a single heap pointer,
// which matters in the queues: shifts and sift swaps copy events
// constantly, and both the bytes moved and the GC write-barrier work
// scale with the layout. seq breaks timestamp ties in schedule order,
// which keeps the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	who any
}

// eventQueue is the priority queue behind the engine: a min-queue over
// (at, seq). Two implementations exist — the classic d-ary binary heap
// below and the calendar queue in calendar.go — and both pop in exactly
// the same total order, so swapping them never changes a simulation.
type eventQueue interface {
	Len() int
	push(event)
	pop() event
	// due reports whether the minimum pending event dispatches exactly at
	// the given time. The engine's due-now ring uses it to let queue
	// events at the current instant (smaller seqs) drain first.
	due(at Time) bool
}

// heapArity is the fan-out of the event queue. A 4-ary heap halves the
// tree depth of a binary heap for a few extra sibling comparisons per
// level. At typical queue depths (hundreds of events) the two are measured
// equals — the depth advantage only pays once queues outgrow cache, as in
// large multi-tenant runs — so 4 is chosen for depth robustness, not for
// the common case.
const heapArity = 4

// eventHeap is a d-ary min-heap ordered by (at, seq). It is hand-rolled
// rather than built on container/heap to avoid interface boxing on the hot
// path, and its backing array is preallocated by the engine so steady-state
// scheduling never allocates.
type eventHeap struct {
	items []event
}

// initialHeapCapacity is the backing array preallocated per engine: large
// enough that even busy multi-tenant runs never grow it, small enough to be
// free (48 B/event).
const initialHeapCapacity = 1024

func newEventHeap() eventHeap {
	return eventHeap{items: make([]event, 0, initialHeapCapacity)}
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) due(at Time) bool {
	return len(h.items) > 0 && h.items[0].at == at
}

// before reports whether event a dispatches before event b.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !before(&h.items[i], &h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = event{} // drop the who reference for the GC
	h.items = h.items[:last]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= last {
			break
		}
		end := first + heapArity
		if end > last {
			end = last
		}
		smallest := i
		for c := first; c < end; c++ {
			if before(&h.items[c], &h.items[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
