package sim

// event is a scheduled wake-up for a process. seq breaks timestamp ties in
// schedule order, which keeps the simulation deterministic.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

// eventHeap is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than built on container/heap to avoid interface boxing on the hot
// path; the engine pushes and pops one event per process switch.
type eventHeap struct {
	items []event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < last && h.less(left, smallest) {
			smallest = left
		}
		if right < last && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
