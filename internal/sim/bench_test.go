package sim

import "testing"

// Engine throughput: how many simulated events per second of wall time
// the coroutine handoff sustains. Every network hop, disk request, and
// resource grant in the DAS simulator costs a handful of these.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkResourceHandoff(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "res", 1)
	for w := 0; w < 4; w++ {
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				r.Use(p, 1, Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventHeap measures the raw queue: push then pop 1e6 events with
// pseudo-random timestamps per iteration, the access pattern behind every
// process switch. The 4-ary layout and the preallocated backing array are
// what this guards.
func BenchmarkEventHeap(b *testing.B) {
	const n = 1_000_000
	b.ReportAllocs()
	var h eventHeap
	for i := 0; i < b.N; i++ {
		h = newEventHeap()
		rng := uint64(1)
		for j := 0; j < n; j++ {
			rng = rng*6364136223846793005 + 1442695040888963407 // LCG
			h.push(event{at: Time(rng >> 32), seq: uint64(j)})
		}
		for j := 0; j < n; j++ {
			h.pop()
		}
	}
	if h.Len() != 0 {
		b.Fatal("heap not drained")
	}
}

func BenchmarkMailboxPingPong(b *testing.B) {
	e := NewEngine()
	ping := NewMailbox[int](e, "ping")
	pong := NewMailbox[int](e, "pong")
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			v := ping.Get(p)
			pong.Put(v)
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Put(i)
			pong.Get(p)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Shutdown()
}
