package sim

import "testing"

// Engine throughput: how many simulated events per second of wall time
// the coroutine handoff sustains. Every network hop, disk request, and
// resource grant in the DAS simulator costs a handful of these.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkResourceHandoff(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "res", 1)
	for w := 0; w < 4; w++ {
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				r.Use(p, 1, Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMailboxPingPong(b *testing.B) {
	e := NewEngine()
	ping := NewMailbox[int](e, "ping")
	pong := NewMailbox[int](e, "pong")
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			v := ping.Get(p)
			pong.Put(v)
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Put(i)
			pong.Get(p)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Shutdown()
}
