package sim

import "fmt"

// Resource is a FIFO counting semaphore that models a physical resource
// with finite capacity: a NIC that serializes one transfer at a time, a
// disk with a request queue, a CPU with a fixed number of cores. Processes
// Acquire units, hold them while sleeping for the service time, and
// Release them. Grants are strictly first-come first-served: a large
// request at the head of the queue blocks later, smaller requests, which
// models head-of-line blocking in store-and-forward devices.
type Resource struct {
	eng  *Engine
	name string
	cap  int64
	used int64

	// waiters is a head-indexed FIFO: entries [wHead:len) are queued.
	// Popping advances wHead instead of re-slicing so the backing array is
	// reused once the queue drains, keeping contention allocation-free.
	waiters []resWaiter
	wHead   int

	// Utilization accounting.
	busy      Time // integral of used>0 time (any utilization)
	lastCheck Time
	grants    uint64

	// Queueing accounting: how long acquirers waited in line.
	waited    Time
	waitCount uint64
}

type resWaiter struct {
	proc  *Proc
	n     int64
	since Time
}

// NewResource creates a resource with the given capacity (units are up to
// the caller: 1 for an exclusive device, N for N cores). Capacity must be
// positive.
func NewResource(eng *Engine, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q: capacity must be positive, got %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, cap: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.cap }

// InUse returns the units currently held.
func (r *Resource) InUse() int64 { return r.used }

// Grants returns the number of successful acquisitions so far.
func (r *Resource) Grants() uint64 { return r.grants }

// BusyTime returns the total simulated time during which at least one unit
// was held.
func (r *Resource) BusyTime() Time {
	r.tick()
	return r.busy
}

func (r *Resource) tick() {
	now := r.eng.now
	if r.used > 0 {
		r.busy += now - r.lastCheck
	}
	r.lastCheck = now
}

// Acquire blocks the process until n units are available and the request
// is at the head of the FIFO queue. Requesting more than the capacity
// panics, since it could never be satisfied.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 {
		return
	}
	if n > r.cap {
		panic(fmt.Sprintf("sim: resource %q: acquire %d exceeds capacity %d", r.name, n, r.cap))
	}
	if r.wHead == len(r.waiters) && r.used+n <= r.cap {
		r.tick()
		r.used += n
		r.grants++
		return
	}
	r.waiters = append(r.waiters, resWaiter{proc: p, n: n, since: r.eng.now})
	p.park("acquire", r.name)
	// By the time we are woken, release has already granted our units.
}

// Release returns n units and wakes queued waiters whose requests now fit,
// in FIFO order. It may be called by any process (not only the holder).
func (r *Resource) Release(n int64) {
	if n <= 0 {
		return
	}
	r.tick()
	r.used -= n
	if r.used < 0 {
		panic(fmt.Sprintf("sim: resource %q: released more than held", r.name))
	}
	for r.wHead < len(r.waiters) && r.used+r.waiters[r.wHead].n <= r.cap {
		w := r.waiters[r.wHead]
		r.waiters[r.wHead] = resWaiter{}
		r.wHead++
		r.used += w.n
		r.grants++
		r.waited += r.eng.now - w.since
		r.waitCount++
		r.eng.schedule(r.eng.now, w.proc)
	}
	if r.wHead == len(r.waiters) {
		r.waiters = r.waiters[:0]
		r.wHead = 0
	}
}

// Use acquires n units, sleeps for the service time d, and releases. It is
// the common pattern for modeling a timed pass through a device.
func (r *Resource) Use(p *Proc, n int64, d Time) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// QueueLen returns the number of processes waiting for this resource.
func (r *Resource) QueueLen() int { return len(r.waiters) - r.wHead }

// WaitTime returns the total time granted acquirers spent queued — the
// congestion signal: zero on an idle device, large on an overloaded one.
func (r *Resource) WaitTime() Time { return r.waited }

// Waits returns how many acquisitions had to queue before being granted.
func (r *Resource) Waits() uint64 { return r.waitCount }
