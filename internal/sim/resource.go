package sim

import (
	"fmt"
	"strconv"
)

// Resource is a FIFO counting semaphore that models a physical resource
// with finite capacity: a NIC that serializes one transfer at a time, a
// disk with a request queue, a CPU with a fixed number of cores. Processes
// Acquire units, hold them while sleeping for the service time, and
// Release them. Grants are strictly first-come first-served: a large
// request at the head of the queue blocks later, smaller requests, which
// models head-of-line blocking in store-and-forward devices.
//
// Fast-path chains use AcquireTask instead of Acquire: the grant resumes a
// Tasker inline rather than waking a parked process. Both kinds of waiter
// share one FIFO, so mixing them preserves the grant order exactly.
type Resource struct {
	eng  *Engine
	name string
	// Deferred naming for per-node resources on hot construction paths:
	// when name is empty, Name() formats namePre+nameIdx+nameSuf on first
	// use (typically never — only diagnostics read resource names).
	namePre, nameSuf string
	nameIdx          int

	cap  int64
	used int64

	// waiters is a head-indexed FIFO: entries [wHead:len) are queued.
	// Popping advances wHead instead of re-slicing so the backing array is
	// reused once the queue drains, keeping contention allocation-free.
	waiters []resWaiter
	wHead   int

	// Utilization accounting.
	busy      Time // integral of used>0 time (any utilization)
	lastCheck Time
	grants    uint64

	// Queueing accounting: how long acquirers waited in line.
	waited    Time
	waitCount uint64
}

type resWaiter struct {
	proc  *Proc
	task  Tasker
	n     int64
	since Time
}

// NewResource creates a resource with the given capacity (units are up to
// the caller: 1 for an exclusive device, N for N cores). Capacity must be
// positive.
func NewResource(eng *Engine, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q: capacity must be positive, got %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, cap: capacity}
}

// NewResourceIndexed is NewResource for per-node resources named
// "<prefix><idx><suffix>", formatting the name lazily: constructing
// thousands of nodes should not pay a Sprintf per resource for names only
// deadlock reports ever read.
func NewResourceIndexed(eng *Engine, prefix string, idx int, suffix string, capacity int64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %s%d%s: capacity must be positive, got %d", prefix, idx, suffix, capacity))
	}
	return &Resource{eng: eng, namePre: prefix, nameIdx: idx, nameSuf: suffix, cap: capacity}
}

// Name returns the resource's diagnostic name, formatting (and caching) an
// indexed name on first use.
func (r *Resource) Name() string {
	if r.name == "" && r.namePre != "" {
		r.name = r.namePre + strconv.Itoa(r.nameIdx) + r.nameSuf
	}
	return r.name
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.cap }

// InUse returns the units currently held.
func (r *Resource) InUse() int64 { return r.used }

// Grants returns the number of successful acquisitions so far.
func (r *Resource) Grants() uint64 { return r.grants }

// BusyTime returns the total simulated time during which at least one unit
// was held.
func (r *Resource) BusyTime() Time {
	r.tick()
	return r.busy
}

func (r *Resource) tick() {
	now := r.eng.now
	if r.used > 0 {
		r.busy += now - r.lastCheck
	}
	r.lastCheck = now
}

// grantNow reports whether n units can be granted immediately (no queue,
// capacity available) and takes them if so.
func (r *Resource) grantNow(n int64) bool {
	if r.wHead == len(r.waiters) && r.used+n <= r.cap {
		r.tick()
		r.used += n
		r.grants++
		return true
	}
	return false
}

// Acquire blocks the process until n units are available and the request
// is at the head of the FIFO queue. Requesting more than the capacity
// panics, since it could never be satisfied.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 {
		return
	}
	if n > r.cap {
		panic(fmt.Sprintf("sim: resource %q: acquire %d exceeds capacity %d", r.Name(), n, r.cap))
	}
	if r.grantNow(n) {
		return
	}
	r.waiters = append(r.waiters, resWaiter{proc: p, n: n, since: r.eng.now})
	p.park("acquire", r)
	// By the time we are woken, release has already granted our units.
}

// AcquireTask is the fast-path Acquire: it either grants n units
// immediately (returning true) or queues t to be scheduled — via a task
// event at the granting Release — once the units are granted (returning
// false). The queued task event occupies exactly the (at, seq) position the
// classic path's process wake-up would, preserving event parity.
func (r *Resource) AcquireTask(n int64, t Tasker) bool {
	if n <= 0 {
		return true
	}
	if n > r.cap {
		panic(fmt.Sprintf("sim: resource %q: acquire %d exceeds capacity %d", r.Name(), n, r.cap))
	}
	if r.grantNow(n) {
		return true
	}
	r.waiters = append(r.waiters, resWaiter{task: t, n: n, since: r.eng.now})
	return false
}

// Release returns n units and wakes queued waiters whose requests now fit,
// in FIFO order. It may be called by any process (not only the holder).
func (r *Resource) Release(n int64) {
	if n <= 0 {
		return
	}
	r.tick()
	r.used -= n
	if r.used < 0 {
		panic(fmt.Sprintf("sim: resource %q: released more than held", r.Name()))
	}
	for r.wHead < len(r.waiters) && r.used+r.waiters[r.wHead].n <= r.cap {
		w := r.waiters[r.wHead]
		r.waiters[r.wHead] = resWaiter{}
		r.wHead++
		r.used += w.n
		r.grants++
		r.waited += r.eng.now - w.since
		r.waitCount++
		if w.task != nil {
			r.eng.ScheduleTask(0, w.task)
		} else {
			r.eng.schedule(r.eng.now, w.proc)
		}
	}
	if r.wHead == len(r.waiters) {
		r.waiters = r.waiters[:0]
		r.wHead = 0
	}
}

// Use acquires n units, sleeps for the service time d, and releases. It is
// the common pattern for modeling a timed pass through a device.
func (r *Resource) Use(p *Proc, n int64, d Time) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// QueueLen returns the number of waiters (processes and tasks) queued for
// this resource.
func (r *Resource) QueueLen() int { return len(r.waiters) - r.wHead }

// WaitTime returns the total time granted acquirers spent queued — the
// congestion signal: zero on an idle device, large on an overloaded one.
func (r *Resource) WaitTime() Time { return r.waited }

// Waits returns how many acquisitions had to queue before being granted.
func (r *Resource) Waits() uint64 { return r.waitCount }
