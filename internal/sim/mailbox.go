package sim

import "strconv"

// Mailbox is an unbounded FIFO message queue between processes. Put never
// blocks; Get blocks the receiving process until a message is available.
// When several processes wait on the same mailbox, messages are handed to
// waiters in their arrival order, preserving determinism.
//
// A mailbox can instead drive a dispatcher (SetDispatcher): the fast-path
// replacement for a daemon process looping over Get. Put then schedules a
// task event in exactly the position the daemon's wake-up would occupy,
// and the mailbox's RunTask drains the queue through the dispatcher inline
// on the engine goroutine — same events, no goroutine switches.
//
// Both internal queues are head-indexed: popping advances a head cursor
// instead of re-slicing, so the backing arrays are reused once the queue
// drains and steady-state traffic through a mailbox allocates nothing.
type Mailbox[T any] struct {
	eng  *Engine
	name string
	// Deferred naming, as in Resource: per-node mailboxes on hot
	// construction paths format "<pre><idx><suf>" only if a diagnostic
	// ever asks.
	namePre, nameSuf string
	nameIdx          int

	items []T
	iHead int

	// waiters are receivers parked in Get. When a message arrives for a
	// waiter, the value is stored in its slot before the process is woken,
	// so a later Get by another process cannot steal it. Spent waiters are
	// recycled through free.
	waiters []*boxWaiter[T]
	wHead   int
	free    []*boxWaiter[T]

	// Dispatcher state (fast path). armed mirrors "the daemon loop is
	// parked in Get": exactly one of {armed, a pending task event} holds
	// whenever dispatch is set and the queue is empty/non-empty.
	dispatch func(T)
	armed    bool

	// abandon, when set, reclaims the mailbox on the next Put that finds
	// no live waiter: the value is dropped unobserved and the hook runs
	// once. See Abandon.
	abandon func()

	// next, when set, consumes the next Put as an inline task event: the
	// task-based caller's stand-in for a Reserve'd process waiter. See
	// Expect.
	next     Receiver[T]
	nextFree []*nextTask[T]

	puts, gets uint64
}

// Receiver consumes a value delivered to a mailbox it Expect'ed on. It is
// an interface rather than a func so pooled caller state can receive
// without allocating a closure per call.
type Receiver[T any] interface {
	OnDelivery(v T)
}

// nextTask carries one delivered value from Put to the Receiver as a task
// event; spent tasks are recycled through the mailbox's nextFree pool.
type nextTask[T any] struct {
	m   *Mailbox[T]
	r   Receiver[T]
	val T
}

func (n *nextTask[T]) RunTask() {
	m, r, v := n.m, n.r, n.val
	var zero T
	n.r, n.val = nil, zero
	m.nextFree = append(m.nextFree, n)
	m.gets++
	r.OnDelivery(v)
}

type boxWaiter[T any] struct {
	proc  *Proc
	val   T
	ready bool
	dead  bool // timed out in GetTimeout; Put recycles it instead of delivering
}

// NewMailbox creates an empty mailbox. The name is used in deadlock
// diagnostics.
func NewMailbox[T any](eng *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: eng, name: name}
}

// NewMailboxIndexed creates an empty mailbox named "<prefix><idx><suffix>",
// formatted lazily on first Name() call: per-node mailboxes are created in
// the thousands and their names read only by deadlock reports.
func NewMailboxIndexed[T any](eng *Engine, prefix string, idx int, suffix string) *Mailbox[T] {
	return &Mailbox[T]{eng: eng, namePre: prefix, nameIdx: idx, nameSuf: suffix}
}

// Name returns the mailbox's diagnostic name, formatting (and caching) an
// indexed name on first use.
func (m *Mailbox[T]) Name() string {
	if m.name == "" && m.namePre != "" {
		m.name = m.namePre + strconv.Itoa(m.nameIdx) + m.nameSuf
	}
	return m.name
}

// Len returns the number of queued (undelivered) messages.
func (m *Mailbox[T]) Len() int { return len(m.items) - m.iHead }

// Puts returns the total number of messages ever Put.
func (m *Mailbox[T]) Puts() uint64 { return m.puts }

// Gets returns the total number of messages ever delivered to a receiver
// or dispatcher.
func (m *Mailbox[T]) Gets() uint64 { return m.gets }

// Put enqueues v. If a receiver is waiting, the message is assigned to the
// longest-waiting receiver and that process is scheduled to resume at the
// current time. If a dispatcher is installed and idle, a task event is
// scheduled to drain the queue. Put never blocks and may be called from
// any process or task.
func (m *Mailbox[T]) Put(v T) {
	m.puts++
	for m.wHead < len(m.waiters) {
		w := m.waiters[m.wHead]
		m.waiters[m.wHead] = nil
		m.wHead++
		if m.wHead == len(m.waiters) {
			m.waiters = m.waiters[:0]
			m.wHead = 0
		}
		if w.dead {
			// Receiver already timed out and moved on; recycle its slot and
			// try the next waiter.
			w.proc, w.dead = nil, false
			m.free = append(m.free, w)
			continue
		}
		w.val = v
		w.ready = true
		m.eng.schedule(m.eng.now, w.proc)
		return
	}
	if m.abandon != nil {
		// The receiver gave up on this mailbox; drop the value unobserved
		// and hand the mailbox back to its owner. One-shot.
		fn := m.abandon
		m.abandon = nil
		fn()
		return
	}
	if m.next != nil {
		// A task-based caller Expects this value: hand it over as a task
		// event in exactly the position a Reserve'd process waiter's
		// wake-up would occupy. One-shot.
		t := m.acquireNext()
		t.r, t.val = m.next, v
		m.next = nil
		m.eng.ScheduleTask(0, t)
		return
	}
	m.items = append(m.items, v)
	if m.dispatch != nil && m.armed {
		// The dispatcher is idle — exactly the state where a classic daemon
		// loop would be parked in Get — so this Put schedules its wake-up,
		// as a task event at the identical (at, seq) position.
		m.armed = false
		m.eng.ScheduleTask(0, m)
	}
}

// SetDispatcher installs fn as this mailbox's inline message handler and
// schedules the initial drain task — the fast-path stand-in for the daemon
// process's start event, keeping event counts identical across modes. The
// handler runs on the engine goroutine and must not block; messages Put
// before the initial task dispatches are drained by it in order. Get and
// GetTimeout must not be used on a dispatcher mailbox.
func (m *Mailbox[T]) SetDispatcher(fn func(T)) {
	if m.dispatch != nil {
		panic("sim: mailbox " + m.Name() + ": dispatcher already set")
	}
	m.dispatch = fn
	m.armed = false
	m.eng.ScheduleTask(0, m)
}

// RunTask drains every queued message through the dispatcher, then re-arms.
// One drain per wake — not one per message — is exactly how a classic
// daemon loop behaves: woken once, it Gets until the queue is empty, then
// parks again.
func (m *Mailbox[T]) RunTask() {
	for {
		v, ok := m.popItem()
		if !ok {
			break
		}
		m.gets++
		m.dispatch(v)
	}
	m.armed = true
}

// Get dequeues the oldest message, blocking the process until one exists.
func (m *Mailbox[T]) Get(p *Proc) T {
	if m.dispatch != nil {
		panic("sim: mailbox " + m.Name() + ": Get on a dispatcher mailbox")
	}
	m.gets++
	if v, ok := m.popItem(); ok {
		return v
	}
	w := m.acquireWaiter(p)
	m.waiters = append(m.waiters, w)
	p.park("recv", m)
	if !w.ready {
		panic("sim: mailbox woke receiver without a message")
	}
	v := w.val
	var zero T
	w.val, w.proc = zero, nil
	m.free = append(m.free, w)
	return v
}

// GetTimeout dequeues the oldest message, blocking the process for at most
// d simulated time. It returns ok=false if no message arrived in time. A
// message Put at the exact timeout instant is delivered only if the Put
// was scheduled before the timeout fired; otherwise it stays queued for
// the next receiver — it is never lost.
func (m *Mailbox[T]) GetTimeout(p *Proc, d Time) (T, bool) {
	if m.dispatch != nil {
		panic("sim: mailbox " + m.Name() + ": GetTimeout on a dispatcher mailbox")
	}
	if v, ok := m.popItem(); ok {
		m.gets++
		return v, true
	}
	var zero T
	if d <= 0 {
		return zero, false
	}
	w := m.acquireWaiter(p)
	m.waiters = append(m.waiters, w)
	t := m.eng.AfterFunc(d, func() {
		if w.ready {
			// Delivery was scheduled at this same instant before the timer
			// fired; the receiver already has exactly one pending wake.
			return
		}
		w.dead = true
		m.eng.schedule(m.eng.now, w.proc)
	})
	p.park("recv", m)
	if !w.ready {
		// Timed out. The dead waiter stays in the queue until a later Put
		// skips over and recycles it.
		return zero, false
	}
	t.Stop()
	m.gets++
	v := w.val
	w.val, w.proc = zero, nil
	m.free = append(m.free, w)
	return v, true
}

// Pending is a registered receive: the fused-call half of Get. Reserve
// splits Get's "register waiter" from its "park", so a client can register
// for the reply, run the request's transfer chain, and park exactly once
// for the whole RPC.
type Pending[T any] struct {
	m *Mailbox[T]
	w *boxWaiter[T]
}

// Reserve registers the calling process as this mailbox's next receiver
// without blocking. The mailbox must be empty with no other waiters (a
// reply mailbox mid-call always is). The caller must park before the
// delivering Put's wake-up dispatches, and then Redeem the value.
func (m *Mailbox[T]) Reserve(p *Proc) Pending[T] {
	if m.iHead != len(m.items) || m.wHead != len(m.waiters) {
		panic("sim: mailbox " + m.Name() + ": Reserve on a non-empty mailbox")
	}
	w := m.acquireWaiter(p)
	m.waiters = append(m.waiters, w)
	return Pending[T]{m: m, w: w}
}

// Redeem returns the value delivered to a Reserve'd waiter. It must be
// called after the process wakes from the park that followed Reserve.
func (pd Pending[T]) Redeem() T {
	m, w := pd.m, pd.w
	if !w.ready {
		panic("sim: mailbox " + m.Name() + ": Redeem before delivery")
	}
	m.gets++
	v := w.val
	var zero T
	w.val, w.proc, w.ready = zero, nil, false
	m.free = append(m.free, w)
	return v
}

// Expect registers r as the one-shot inline consumer of this mailbox's
// next Put: the task-based caller's half of a fused RPC, standing in for
// Reserve + park + Redeem. The delivering Put schedules a task event at
// the identical (at, seq) a process waiter's wake-up would occupy, and
// that event hands the value to r.OnDelivery on the engine goroutine. The
// mailbox must be empty with no waiters, dispatcher, or prior Expect.
func (m *Mailbox[T]) Expect(r Receiver[T]) {
	if m.dispatch != nil || m.next != nil {
		panic("sim: mailbox " + m.Name() + ": Expect on a dispatched mailbox")
	}
	if m.iHead != len(m.items) || m.wHead != len(m.waiters) {
		panic("sim: mailbox " + m.Name() + ": Expect on a non-empty mailbox")
	}
	m.next = r
}

// acquireNext returns a reset delivery task, reusing a spent one when
// possible.
func (m *Mailbox[T]) acquireNext() *nextTask[T] {
	if n := len(m.nextFree); n > 0 {
		t := m.nextFree[n-1]
		m.nextFree[n-1] = nil
		m.nextFree = m.nextFree[:n-1]
		return t
	}
	return &nextTask[T]{m: m}
}

// Abandon arranges for the next Put that finds no live waiter to drop its
// value and call fn once, instead of queueing the value forever. It is how
// a canceled caller hands its reply mailbox back to a pool: the late
// response, when it finally arrives, triggers reclamation instead of
// leaking the mailbox. If the mailbox already holds an undelivered value,
// Abandon drops it and runs fn immediately.
func (m *Mailbox[T]) Abandon(fn func()) {
	if m.iHead != len(m.items) {
		m.items = m.items[:0]
		m.iHead = 0
		fn()
		return
	}
	m.abandon = fn
}

// acquireWaiter returns a reset waiter slot for p, reusing a spent one when
// possible.
func (m *Mailbox[T]) acquireWaiter(p *Proc) *boxWaiter[T] {
	if n := len(m.free); n > 0 {
		w := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		w.proc, w.ready, w.dead = p, false, false
		return w
	}
	return &boxWaiter[T]{proc: p}
}

// TryGet dequeues a message if one is queued, without blocking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	if v, ok := m.popItem(); ok {
		m.gets++
		return v, true
	}
	var zero T
	return zero, false
}

// popItem removes the oldest queued message, zeroing its slot so the
// mailbox does not pin message payloads after delivery.
func (m *Mailbox[T]) popItem() (T, bool) {
	if m.iHead == len(m.items) {
		var zero T
		return zero, false
	}
	v := m.items[m.iHead]
	var zero T
	m.items[m.iHead] = zero
	m.iHead++
	if m.iHead == len(m.items) {
		m.items = m.items[:0]
		m.iHead = 0
	}
	return v, true
}
