package sim

// Mailbox is an unbounded FIFO message queue between processes. Put never
// blocks; Get blocks the receiving process until a message is available.
// When several processes wait on the same mailbox, messages are handed to
// waiters in their arrival order, preserving determinism.
//
// Both internal queues are head-indexed: popping advances a head cursor
// instead of re-slicing, so the backing arrays are reused once the queue
// drains and steady-state traffic through a mailbox allocates nothing.
type Mailbox[T any] struct {
	eng   *Engine
	name  string
	items []T
	iHead int

	// waiters are receivers parked in Get. When a message arrives for a
	// waiter, the value is stored in its slot before the process is woken,
	// so a later Get by another process cannot steal it. Spent waiters are
	// recycled through free.
	waiters []*boxWaiter[T]
	wHead   int
	free    []*boxWaiter[T]

	puts, gets uint64
}

type boxWaiter[T any] struct {
	proc  *Proc
	val   T
	ready bool
	dead  bool // timed out in GetTimeout; Put recycles it instead of delivering
}

// NewMailbox creates an empty mailbox. The name is used in deadlock
// diagnostics.
func NewMailbox[T any](eng *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: eng, name: name}
}

// Name returns the mailbox's diagnostic name.
func (m *Mailbox[T]) Name() string { return m.name }

// Len returns the number of queued (undelivered) messages.
func (m *Mailbox[T]) Len() int { return len(m.items) - m.iHead }

// Puts returns the total number of messages ever Put.
func (m *Mailbox[T]) Puts() uint64 { return m.puts }

// Put enqueues v. If a receiver is waiting, the message is assigned to the
// longest-waiting receiver and that process is scheduled to resume at the
// current time. Put never blocks and may be called from any process.
func (m *Mailbox[T]) Put(v T) {
	m.puts++
	for m.wHead < len(m.waiters) {
		w := m.waiters[m.wHead]
		m.waiters[m.wHead] = nil
		m.wHead++
		if m.wHead == len(m.waiters) {
			m.waiters = m.waiters[:0]
			m.wHead = 0
		}
		if w.dead {
			// Receiver already timed out and moved on; recycle its slot and
			// try the next waiter.
			w.proc, w.dead = nil, false
			m.free = append(m.free, w)
			continue
		}
		w.val = v
		w.ready = true
		m.eng.schedule(m.eng.now, w.proc)
		return
	}
	m.items = append(m.items, v)
}

// Get dequeues the oldest message, blocking the process until one exists.
func (m *Mailbox[T]) Get(p *Proc) T {
	m.gets++
	if v, ok := m.popItem(); ok {
		return v
	}
	w := m.acquireWaiter(p)
	m.waiters = append(m.waiters, w)
	p.park("recv", m.name)
	if !w.ready {
		panic("sim: mailbox woke receiver without a message")
	}
	v := w.val
	var zero T
	w.val, w.proc = zero, nil
	m.free = append(m.free, w)
	return v
}

// GetTimeout dequeues the oldest message, blocking the process for at most
// d simulated time. It returns ok=false if no message arrived in time. A
// message Put at the exact timeout instant is delivered only if the Put
// was scheduled before the timeout fired; otherwise it stays queued for
// the next receiver — it is never lost.
func (m *Mailbox[T]) GetTimeout(p *Proc, d Time) (T, bool) {
	if v, ok := m.popItem(); ok {
		m.gets++
		return v, true
	}
	var zero T
	if d <= 0 {
		return zero, false
	}
	w := m.acquireWaiter(p)
	m.waiters = append(m.waiters, w)
	t := m.eng.AfterFunc(d, func() {
		if w.ready {
			// Delivery was scheduled at this same instant before the timer
			// fired; the receiver already has exactly one pending wake.
			return
		}
		w.dead = true
		m.eng.schedule(m.eng.now, w.proc)
	})
	p.park("recv", m.name)
	if !w.ready {
		// Timed out. The dead waiter stays in the queue until a later Put
		// skips over and recycles it.
		return zero, false
	}
	t.Stop()
	m.gets++
	v := w.val
	w.val, w.proc = zero, nil
	m.free = append(m.free, w)
	return v, true
}

// acquireWaiter returns a reset waiter slot for p, reusing a spent one when
// possible.
func (m *Mailbox[T]) acquireWaiter(p *Proc) *boxWaiter[T] {
	if n := len(m.free); n > 0 {
		w := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		w.proc, w.ready, w.dead = p, false, false
		return w
	}
	return &boxWaiter[T]{proc: p}
}

// TryGet dequeues a message if one is queued, without blocking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	if v, ok := m.popItem(); ok {
		m.gets++
		return v, true
	}
	var zero T
	return zero, false
}

// popItem removes the oldest queued message, zeroing its slot so the
// mailbox does not pin message payloads after delivery.
func (m *Mailbox[T]) popItem() (T, bool) {
	if m.iHead == len(m.items) {
		var zero T
		return zero, false
	}
	v := m.items[m.iHead]
	var zero T
	m.items[m.iHead] = zero
	m.iHead++
	if m.iHead == len(m.items) {
		m.items = m.items[:0]
		m.iHead = 0
	}
	return v, true
}
