package sim

// Mailbox is an unbounded FIFO message queue between processes. Put never
// blocks; Get blocks the receiving process until a message is available.
// When several processes wait on the same mailbox, messages are handed to
// waiters in their arrival order, preserving determinism.
type Mailbox[T any] struct {
	eng   *Engine
	name  string
	items []T

	// waiters are receivers parked in Get. When a message arrives for a
	// waiter, the value is stored in its slot before the process is woken,
	// so a later Get by another process cannot steal it.
	waiters []*boxWaiter[T]

	puts, gets uint64
}

type boxWaiter[T any] struct {
	proc  *Proc
	val   T
	ready bool
}

// NewMailbox creates an empty mailbox. The name is used in deadlock
// diagnostics.
func NewMailbox[T any](eng *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: eng, name: name}
}

// Name returns the mailbox's diagnostic name.
func (m *Mailbox[T]) Name() string { return m.name }

// Len returns the number of queued (undelivered) messages.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Puts returns the total number of messages ever Put.
func (m *Mailbox[T]) Puts() uint64 { return m.puts }

// Put enqueues v. If a receiver is waiting, the message is assigned to the
// longest-waiting receiver and that process is scheduled to resume at the
// current time. Put never blocks and may be called from any process.
func (m *Mailbox[T]) Put(v T) {
	m.puts++
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		w.val = v
		w.ready = true
		m.eng.schedule(m.eng.now, w.proc)
		return
	}
	m.items = append(m.items, v)
}

// Get dequeues the oldest message, blocking the process until one exists.
func (m *Mailbox[T]) Get(p *Proc) T {
	m.gets++
	if len(m.items) > 0 {
		v := m.items[0]
		m.items = m.items[1:]
		return v
	}
	w := &boxWaiter[T]{proc: p}
	m.waiters = append(m.waiters, w)
	p.park("recv " + m.name)
	if !w.ready {
		panic("sim: mailbox woke receiver without a message")
	}
	return w.val
}

// TryGet dequeues a message if one is queued, without blocking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if len(m.items) == 0 {
		return zero, false
	}
	v := m.items[0]
	m.items = m.items[1:]
	m.gets++
	return v, true
}
