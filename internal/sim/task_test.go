package sim

import (
	"testing"
)

// countTask records its dispatch times; a reschedule chain built from it
// stands in for the fast paths' pooled task chains.
type countTask struct {
	eng   *Engine
	fires []Time
	left  int
	gap   Time
}

func (t *countTask) RunTask() {
	t.fires = append(t.fires, t.eng.Now())
	if t.left > 0 {
		t.left--
		t.eng.ScheduleTask(t.gap, t)
	}
}

// TestScheduleTaskAdvancesClockAndCounts checks that task events are
// first-class: they advance the virtual clock and increment the event
// counter exactly like process wake-ups.
func TestScheduleTaskAdvancesClockAndCounts(t *testing.T) {
	e := NewEngine()
	ct := &countTask{eng: e, left: 3, gap: 10}
	e.ScheduleTask(5, ct)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{5, 15, 25, 35}
	if len(ct.fires) != len(want) {
		t.Fatalf("fired %d times, want %d", len(ct.fires), len(want))
	}
	for i, at := range want {
		if ct.fires[i] != at {
			t.Fatalf("fire %d at %v, want %v", i, ct.fires[i], at)
		}
	}
	if e.Events() != 4 {
		t.Fatalf("Events = %d, want 4", e.Events())
	}
	if e.Now() != 35 {
		t.Fatalf("Now = %v, want 35", e.Now())
	}
}

// TestTaskAndProcFIFOAtSameTimestamp checks that tasks and process
// wake-ups scheduled for the same instant dispatch in schedule order —
// the seq tie-break ignores what kind of event it is. This is the parity
// property the fast paths rely on: swapping a process for a task at the
// same (at, seq) cannot reorder anything.
func TestTaskAndProcFIFOAtSameTimestamp(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("driver", func(p *Proc) {
		e.ScheduleTask(10, taskFunc(func() { order = append(order, "t1") }))
		e.Spawn("p1", func(*Proc) { order = append(order, "p1") })
		p.Sleep(10)
		order = append(order, "driver")
	})
	// p1 starts at t=0; t1 and driver's wake-up both land at t=10, with t1
	// holding the earlier seq.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p1", "t1", "driver"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// taskFunc adapts a closure to Tasker for tests.
type taskFunc func()

func (f taskFunc) RunTask() { f() }

// TestResumeInMatchesSleep checks that parking a process and resuming it
// via ResumeIn is indistinguishable from Sleep: same clock, same event
// count.
func TestResumeInMatchesSleep(t *testing.T) {
	run := func(useResume bool) (Time, uint64) {
		e := NewEngine()
		e.Spawn("a", func(p *Proc) {
			if useResume {
				e.ScheduleTask(0, taskFunc(func() { e.ResumeIn(50, p) }))
				p.Park("test", nil)
			} else {
				e.ScheduleTask(0, taskFunc(func() {}))
				p.Sleep(50)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Events()
	}
	nowA, evA := run(true)
	nowB, evB := run(false)
	if nowA != nowB || evA != evB {
		t.Fatalf("ResumeIn run (now %v, events %d) != Sleep run (now %v, events %d)",
			nowA, evA, nowB, evB)
	}
}

// TestShutdownUnwindOrder checks the satellite guarantee: Shutdown
// unwinds parked processes in creation order, every run, so teardown
// traces are reproducible.
func TestShutdownUnwindOrder(t *testing.T) {
	e := NewEngine()
	const n = 8
	var unwound []int
	for i := 0; i < n; i++ {
		i := i
		sig := NewSignal[struct{}](e, "never")
		e.SpawnDaemon("parked", func(p *Proc) {
			defer func() { unwound = append(unwound, i) }()
			sig.Wait(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if len(unwound) != n {
		t.Fatalf("unwound %d processes, want %d", len(unwound), n)
	}
	for i, got := range unwound {
		if got != i {
			t.Fatalf("unwind order %v, want creation order", unwound)
		}
	}
}

// TestMailboxDispatcherMatchesDaemonLoop runs the same put schedule
// against a classic Get-loop daemon and a dispatcher mailbox and checks
// the simulations are indistinguishable: same event count, same clock,
// same per-wake drain behavior (message order included).
func TestMailboxDispatcherMatchesDaemonLoop(t *testing.T) {
	type outcome struct {
		got    []int
		events uint64
		now    Time
	}
	produce := func(e *Engine, m *Mailbox[int]) {
		e.Spawn("producer", func(p *Proc) {
			m.Put(1)
			m.Put(2) // same-instant burst: one wake must drain both
			p.Sleep(10)
			m.Put(3)
			p.Sleep(10)
			m.Put(4)
			m.Put(5)
		})
	}
	classic := func() outcome {
		e := NewEngine()
		m := NewMailbox[int](e, "box")
		var got []int
		e.SpawnDaemon("consumer", func(p *Proc) {
			for {
				got = append(got, m.Get(p))
			}
		})
		produce(e, m)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		return outcome{got, e.Events(), e.Now()}
	}
	fast := func() outcome {
		e := NewEngine()
		m := NewMailbox[int](e, "box")
		var got []int
		m.SetDispatcher(func(v int) { got = append(got, v) })
		produce(e, m)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		return outcome{got, e.Events(), e.Now()}
	}
	a, b := classic(), fast()
	if a.events != b.events || a.now != b.now {
		t.Fatalf("classic (events %d, now %v) != dispatcher (events %d, now %v)",
			a.events, a.now, b.events, b.now)
	}
	if len(a.got) != len(b.got) {
		t.Fatalf("classic drained %v, dispatcher %v", a.got, b.got)
	}
	for i := range a.got {
		if a.got[i] != b.got[i] {
			t.Fatalf("classic drained %v, dispatcher %v", a.got, b.got)
		}
	}
}

// TestResourceTaskAndProcWaitersFIFO checks that task waiters and process
// waiters on the same resource are granted in arrival order, whichever
// kind they are.
func TestResourceTaskAndProcWaitersFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "res", 1)
	var order []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		// Enqueue a task waiter first, then a proc waiter.
		granted := false
		if r.AcquireTask(1, taskFunc(func() {
			granted = true
			order = append(order, "task")
			r.Release(1)
		})) {
			t.Error("AcquireTask granted while held")
		}
		e.Spawn("waiter", func(q *Proc) {
			r.Acquire(q, 1)
			order = append(order, "proc")
			r.Release(1)
		})
		p.Sleep(5)
		r.Release(1)
		_ = granted
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "task" || order[1] != "proc" {
		t.Fatalf("grant order %v, want [task proc]", order)
	}
}
