package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hpcio/das/internal/grid"
)

func TestStatsSequential(t *testing.T) {
	g := grid.New(4, 2)
	copy(g.Data, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	agg := ReduceAll(Stats{}, g)
	if agg[StatCount] != 8 || agg[StatSum] != 36 || agg[StatMin] != 1 || agg[StatMax] != 8 {
		t.Errorf("agg = %v", agg)
	}
	if Mean(agg) != 4.5 {
		t.Errorf("Mean = %v", Mean(agg))
	}
	if got := StdDev(agg); math.Abs(got-2.29128784747792) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestStatsEmptyAggregates(t *testing.T) {
	zero := Stats{}.Merge(nil)
	if Mean(zero) != 0 || StdDev(zero) != 0 {
		t.Error("empty aggregate should yield zero mean/stddev")
	}
}

// Property: merging arbitrary band partitions of a grid reproduces the
// sequential aggregate exactly for count/sum/min/max and within float
// tolerance for sum of squares.
func TestStatsMergeInvarianceProperty(t *testing.T) {
	g := lcgGrid(16, 8, 77)
	want := ReduceAll(Stats{}, g)
	prop := func(cutRaw uint16) bool {
		cut := int64(cutRaw)%(g.Len()-1) + 1
		var partials [][]float64
		for _, span := range [][2]int64{{0, cut}, {cut, g.Len()}} {
			b := grid.BandOf(g, span[0], span[1], span[0], span[1])
			partials = append(partials, Stats{}.ReduceBand(b))
		}
		got := Stats{}.Merge(partials)
		return got[StatCount] == want[StatCount] &&
			got[StatMin] == want[StatMin] &&
			got[StatMax] == want[StatMax] &&
			math.Abs(got[StatSum]-want[StatSum]) < 1e-9 &&
			math.Abs(got[StatSumSq]-want[StatSumSq]) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := Histogram{Bins: 4, Lo: 0, Hi: 8}
	g := grid.New(8, 1)
	copy(g.Data, []float64{-1, 0, 1.9, 2, 5.5, 7.9, 8, 100})
	agg := ReduceAll(h, g)
	// Buckets [0,2) [2,4) [4,6) [6,8): -1 clamps down, 8 and 100 clamp up.
	want := []float64{3, 1, 1, 3}
	for i := range want {
		if agg[i] != want[i] {
			t.Fatalf("histogram %v, want %v", agg, want)
		}
	}
	var total float64
	for _, v := range agg {
		total += v
	}
	if total != float64(g.Len()) {
		t.Errorf("histogram total %v != element count", total)
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	h := Histogram{Bins: 4, Lo: 5, Hi: 5}
	g := grid.New(4, 1)
	agg := ReduceAll(h, g)
	if agg[0] != 4 {
		t.Errorf("degenerate range should fold into bucket 0: %v", agg)
	}
}

func TestHistogramMergeSumsBins(t *testing.T) {
	h := Histogram{Bins: 2, Lo: 0, Hi: 2}
	a := []float64{3, 1}
	b := []float64{2, 4}
	got := h.Merge([][]float64{a, b})
	if got[0] != 5 || got[1] != 5 {
		t.Errorf("merge = %v", got)
	}
}

func TestReducerRegistry(t *testing.T) {
	r := DefaultReducers()
	names := r.Names()
	if len(names) != 2 || names[0] != "stats" || names[1] != "histogram" {
		t.Errorf("Names = %v", names)
	}
	if _, ok := r.Lookup("stats"); !ok {
		t.Error("Lookup(stats) failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	red, _ := r.Lookup("stats")
	if red.PartialLen() != 5 || red.Weight() <= 0 || red.Description() == "" {
		t.Error("stats reducer metadata wrong")
	}
}
