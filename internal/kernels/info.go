package kernels

import "github.com/hpcio/das/internal/features"

// Info is one registry entry's discoverable metadata: what `dasctl
// -kernels` prints so clients can author DAG specs without reading
// source.
type Info struct {
	// Name is the operator name used in requests and DAG specs.
	Name string
	// Kind is the operator family: "kernel", "combine", or "reduce".
	Kind string
	// Offsets is the symbolic dependence pattern (empty reach for
	// combiners and reducers).
	Offsets []features.Offset
	// Weight is the relative per-element compute cost (flops/elem proxy;
	// 1.0 = flow-routing).
	Weight float64
	// PartialLen is the aggregate length for reducers, 0 otherwise.
	PartialLen int
	// Description is the human-readable summary.
	Description string
}

// List returns every registered kernel's metadata in registration order.
func (r *Registry) List() []Info {
	out := make([]Info, 0, len(r.order))
	for _, name := range r.order {
		k := r.byName[name]
		out = append(out, Info{
			Name:        k.Name(),
			Kind:        KindKernel.String(),
			Offsets:     k.Offsets(),
			Weight:      k.Weight(),
			Description: k.Description(),
		})
	}
	return out
}

// List returns every registered reducer's metadata in registration order.
func (r *ReducerRegistry) List() []Info {
	out := make([]Info, 0, len(r.order))
	for _, name := range r.order {
		red := r.byName[name]
		out = append(out, Info{
			Name:        red.Name(),
			Kind:        KindReduce.String(),
			Weight:      red.Weight(),
			PartialLen:  red.PartialLen(),
			Description: red.Description(),
		})
	}
	return out
}

// List returns every registered combiner's metadata in registration order.
func (r *CombinerRegistry) List() []Info {
	out := make([]Info, 0, len(r.order))
	for _, name := range r.order {
		c := r.byName[name]
		out = append(out, Info{
			Name:        c.Name(),
			Kind:        KindCombine.String(),
			Weight:      c.Weight(),
			Description: c.Description(),
		})
	}
	return out
}
