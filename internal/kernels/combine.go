package kernels

// Combiner is an element-wise binary operator joining two rasters of the
// same shape. Combiners are the join points of operator DAGs: they carry
// no dependence offsets (each output element reads only the co-located
// element of each input), so they compose as the identity under Minkowski
// summation and never add halo traffic.
type Combiner interface {
	// Name is the operator name used in DAG specs.
	Name() string
	// Description is the human-readable summary.
	Description() string
	// Combine merges the co-located elements of the two inputs.
	Combine(a, b float64) float64
	// Weight is the relative per-element compute cost.
	Weight() float64
}

// Add sums the two branches — the classic accumulation join.
type Add struct{}

func (Add) Name() string                 { return "add" }
func (Add) Description() string          { return "Element-wise sum of two rasters." }
func (Add) Combine(a, b float64) float64 { return a + b }
func (Add) Weight() float64              { return 0.1 }

// Sub differences the branches, e.g. a before/after change raster.
type Sub struct{}

func (Sub) Name() string                 { return "sub" }
func (Sub) Description() string          { return "Element-wise difference of two rasters." }
func (Sub) Combine(a, b float64) float64 { return a - b }
func (Sub) Weight() float64              { return 0.1 }

// MaxOf keeps the per-element maximum of the branches.
type MaxOf struct{}

func (MaxOf) Name() string        { return "max" }
func (MaxOf) Description() string { return "Element-wise maximum of two rasters." }
func (MaxOf) Combine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (MaxOf) Weight() float64 { return 0.1 }

// CombinerRegistry maps combiner names, analogous to Registry.
type CombinerRegistry struct {
	byName map[string]Combiner
	order  []string
}

// NewCombinerRegistry returns an empty registry.
func NewCombinerRegistry() *CombinerRegistry {
	return &CombinerRegistry{byName: make(map[string]Combiner)}
}

// Register adds a combiner; re-registering a name replaces it.
func (r *CombinerRegistry) Register(c Combiner) {
	if c.Name() == "" {
		panic("kernels: combiner with empty name")
	}
	if _, exists := r.byName[c.Name()]; !exists {
		r.order = append(r.order, c.Name())
	}
	r.byName[c.Name()] = c
}

// Lookup returns the combiner for an operator name.
func (r *CombinerRegistry) Lookup(name string) (Combiner, bool) {
	c, ok := r.byName[name]
	return c, ok
}

// Names returns registered names in order.
func (r *CombinerRegistry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// DefaultCombiners returns add, sub, and max.
func DefaultCombiners() *CombinerRegistry {
	r := NewCombinerRegistry()
	r.Register(Add{})
	r.Register(Sub{})
	r.Register(MaxOf{})
	return r
}
