package kernels

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/hpcio/das/internal/grid"
)

// fillDeterministic gives a grid varied, reproducible content (including
// plateaus, so flow-routing ties exercise the deterministic tie-break).
func fillDeterministic(g *grid.Grid, seed uint64) {
	s := seed*2654435761 + 12345
	for i := range g.Data {
		s = s*6364136223846793005 + 1442695040888963407
		g.Data[i] = float64(int64(s>>40)%1000) / 7
	}
}

// identical reports byte-identity, distinguishing NaN bit patterns.
func identical(t *testing.T, a, b *grid.Grid) bool {
	t.Helper()
	if a.W != b.W || a.H != b.H || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestParallelApplyMatchesSequentialProperty asserts, for every registered
// kernel, that ParallelApply is byte-identical to the sequential reference
// over randomized shapes — the repo's core invariant under the parallel
// executor.
func TestParallelApplyMatchesSequentialProperty(t *testing.T) {
	reg := Default()
	reg.Register(HorizontalBlur{Radius: 3})
	reg.Register(StrideKernel{Stride: 17})
	reg.Register(ScatterKernel{Strides: []int64{3, 29}})
	defer SetParallelism(0)
	for _, name := range reg.Names() {
		k, _ := reg.Lookup(name)
		t.Run(name, func(t *testing.T) {
			prop := func(wRaw, hRaw uint8, shards uint8, seed uint64) bool {
				w := int(wRaw%37) + 1 // 1..37: includes 1-col grids
				h := int(hRaw%29) + 1 // 1..29: includes 1-row grids
				g := grid.New(w, h)
				fillDeterministic(g, seed)
				want := Apply(k, g)
				SetParallelism(int(shards%13) + 2) // 2..14 forced shards, often > h
				got := ParallelApply(k, g)
				SetParallelism(0)
				return identical(t, want, got)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestParallelApplyDegenerateShapes pins the shapes the partitioner can
// get wrong: single row, single column, and fewer rows than workers.
func TestParallelApplyDegenerateShapes(t *testing.T) {
	defer SetParallelism(0)
	shapes := []struct{ w, h int }{{64, 1}, {1, 64}, {9, 3}, {5, 7}, {1, 1}}
	reg := Default()
	for _, name := range reg.Names() {
		k, _ := reg.Lookup(name)
		for _, sh := range shapes {
			g := grid.New(sh.w, sh.h)
			fillDeterministic(g, uint64(sh.w*1000+sh.h))
			want := Apply(k, g)
			for _, n := range []int{2, 3, 8, 64} {
				SetParallelism(n)
				if !identical(t, want, ParallelApply(k, g)) {
					t.Errorf("%s: %dx%d with %d shards differs from sequential", name, sh.w, sh.h, n)
				}
			}
			SetParallelism(0)
		}
	}
}

// TestShardRowsPartition checks the partitioner's contract: shards are
// contiguous, cover [start, end) exactly, split only at row boundaries
// (except the ragged ends), and depend only on the inputs.
func TestShardRowsPartition(t *testing.T) {
	cases := []struct {
		start, end int64
		width, n   int
	}{
		{0, 1000, 10, 4},
		{0, 10, 10, 4},     // single row
		{0, 64, 1, 8},      // single column
		{5, 95, 10, 3},     // ragged head and tail
		{13, 17, 10, 8},    // sub-row range
		{0, 30, 10, 16},    // more shards than rows
		{999, 1000, 10, 4}, // single element
	}
	for _, c := range cases {
		shards := ShardRows(c.start, c.end, c.width, c.n)
		cur := c.start
		for i, s := range shards {
			if s.Start != cur {
				t.Fatalf("ShardRows(%+v): shard %d starts at %d, want %d", c, i, s.Start, cur)
			}
			if s.End <= s.Start {
				t.Fatalf("ShardRows(%+v): empty shard %d", c, i)
			}
			if i > 0 && s.Start%int64(c.width) != 0 {
				t.Fatalf("ShardRows(%+v): interior boundary %d not row-aligned", c, s.Start)
			}
			cur = s.End
		}
		if cur != c.end {
			t.Fatalf("ShardRows(%+v): covers up to %d, want %d", c, cur, c.end)
		}
		if len(shards) > c.n {
			t.Fatalf("ShardRows(%+v): %d shards exceeds requested %d", c, len(shards), c.n)
		}
		// Determinism: identical inputs, identical partition.
		again := ShardRows(c.start, c.end, c.width, c.n)
		for i := range shards {
			if shards[i] != again[i] {
				t.Fatalf("ShardRows(%+v): partition not deterministic", c)
			}
		}
	}
}

// TestParallelApplyBandConcurrent drives many ParallelApplyBand calls from
// concurrent goroutines so `go test -race` exercises the worker pool's
// sharing: read-only band data, disjoint output shards, pool handoff.
func TestParallelApplyBandConcurrent(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	g := grid.New(128, 64)
	fillDeterministic(g, 7)
	k := Gaussian{}
	want := Apply(k, g)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if got := ParallelApply(k, g); !identical(t, want, got) {
					t.Error("concurrent ParallelApply diverged from sequential")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkApplySequentialVsParallel(b *testing.B) {
	g := grid.New(1024, 512)
	fillDeterministic(g, 42)
	band := grid.BandOf(g, 0, g.Len(), 0, g.Len())
	out := make([]float64, g.Len())
	k := Median{}
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(g.SizeBytes())
		for i := 0; i < b.N; i++ {
			k.ApplyBand(band, out)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(g.SizeBytes())
		for i := 0; i < b.N; i++ {
			ParallelApplyBand(k, band, out)
		}
	})
}
