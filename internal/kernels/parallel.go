// Parallel kernel execution engine: shards ApplyBand calls into
// contiguous row-range sub-bands executed across a package-level worker
// pool. The row partitioner is a pure function of the owned range, the
// raster width, and the shard count, and every output element is computed
// by exactly the same per-element code as the sequential reference, so
// results are byte-identical to Apply/ApplyBand regardless of how many
// workers run or how the scheduler interleaves them.
//
// Parallelism here is real-CPU only: it changes how fast the host
// regenerates an experiment, never the DES cost model. Simulated compute
// time remains p.Sleep(ComputeTime(...)) at the call sites, so the
// simulated clock — and with it every figure — is untouched.
package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hpcio/das/internal/grid"
)

// minParallelElements is the owned-range size below which sharding is not
// worth the synchronization cost and ParallelApplyBand runs sequentially
// (auto mode only; an explicit SetParallelism(n>1) always shards).
const minParallelElements = 4096

// parallelism holds the configured shard count: 0 = auto (GOMAXPROCS,
// with the small-band threshold), 1 = always sequential, n>1 = exactly n
// shards.
var parallelism atomic.Int32

// SetParallelism configures the parallel executor: 0 restores the default
// (one shard per GOMAXPROCS core, small bands run sequentially), 1
// disables sharding, and n>1 forces exactly n shards even on tiny bands
// (used by tests to exercise the partitioner on degenerate shapes).
// Outputs are byte-identical at every setting.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the effective shard count for a band of owned
// elements.
func Parallelism(owned int64) int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	if owned < minParallelElements {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// The worker pool: a fixed set of goroutines (one per core at first use)
// draining a job channel. Submitters that find the channel full run the
// job inline, so the pool can never deadlock and nested ParallelApplyBand
// calls degrade gracefully to inline execution.
var (
	poolOnce sync.Once
	poolJobs chan func()
)

func ensurePool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		poolJobs = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for job := range poolJobs {
					job()
				}
			}()
		}
	})
}

// RowShard is one contiguous owned sub-range produced by ShardRows.
type RowShard struct {
	Start, End int64 // owned element sub-range [Start, End)
}

// ShardRows deterministically partitions the owned range [start, end) of a
// width-wide raster into at most n contiguous, row-aligned shards: rows
// are divided as evenly as possible (the first rows%n shards get one extra
// row), and a ragged first or last row — an owned range that starts or
// ends mid-row — stays attached to its neighboring shard. Empty shards are
// elided, so degenerate shapes (single row, fewer rows than n) yield fewer
// shards. The partition depends only on (start, end, width, n).
func ShardRows(start, end int64, width, n int) []RowShard {
	if end <= start || n <= 1 {
		return []RowShard{{Start: start, End: end}}
	}
	w := int64(width)
	r0 := start / w     // first (possibly partial) row
	r1 := (end - 1) / w // last (possibly partial) row
	rows := r1 - r0 + 1 // rows spanned by the owned range
	if int64(n) > rows {
		n = int(rows)
	}
	shards := make([]RowShard, 0, n)
	base, extra := rows/int64(n), rows%int64(n)
	row := r0
	for i := 0; i < n; i++ {
		take := base
		if int64(i) < extra {
			take++
		}
		lo, hi := row*w, (row+take)*w
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			shards = append(shards, RowShard{Start: lo, End: hi})
		}
		row += take
	}
	return shards
}

// ParallelApplyBand computes the band's owned range into out (length
// b.OwnedLen()) by sharding it row-wise across the worker pool. The result
// is byte-identical to k.ApplyBand(b, out): shards share the band's
// read-only data window and write disjoint sub-slices of out.
func ParallelApplyBand(k Kernel, b *grid.Band, out []float64) {
	shards := ShardRows(b.Start, b.End, b.Width, Parallelism(b.OwnedLen()))
	if len(shards) <= 1 {
		k.ApplyBand(b, out)
		return
	}
	ensurePool()
	var wg sync.WaitGroup
	run := func(s RowShard) {
		sub := *b // shares Data; narrows the owned range
		sub.Start, sub.End = s.Start, s.End
		k.ApplyBand(&sub, out[s.Start-b.Start:s.End-b.Start])
	}
	for _, s := range shards[1:] {
		s := s
		wg.Add(1)
		job := func() {
			defer wg.Done()
			run(s)
		}
		select {
		case poolJobs <- job:
		default:
			job() // pool saturated: make progress inline
		}
	}
	run(shards[0]) // the caller contributes a core too
	wg.Wait()
}

// ParallelApply runs a kernel over a whole grid through the parallel
// executor. It is the drop-in accelerated form of Apply and must produce a
// byte-identical grid (asserted by property tests across every registered
// kernel).
func ParallelApply(k Kernel, g *grid.Grid) *grid.Grid {
	b := grid.BandOf(g, 0, g.Len(), 0, g.Len())
	out := grid.New(g.W, g.H)
	ParallelApplyBand(k, b, out.Data)
	return out
}
