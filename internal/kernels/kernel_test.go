package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hpcio/das/internal/grid"
)

// lcgGrid builds a deterministic pseudo-random grid.
func lcgGrid(w, h int, seed uint64) *grid.Grid {
	g := grid.New(w, h)
	s := seed
	for i := range g.Data {
		s = s*6364136223846793005 + 1442695040888963407
		g.Data[i] = float64(s>>40) / float64(1<<24)
	}
	return g
}

func allKernels() []Kernel {
	return []Kernel{
		FlowRouting{}, FlowAccumulation{}, Gaussian{}, Median{}, Slope{}, Diffusion{},
		StrideKernel{Stride: 5}, ScatterKernel{Strides: []int64{3, 17, 40}},
		HorizontalBlur{Radius: 2},
	}
}

// TestBandedEqualsSequential is the core functional invariant behind every
// scheme comparison: applying a kernel over any banded decomposition with
// sufficient halo must reproduce the sequential result exactly.
func TestBandedEqualsSequential(t *testing.T) {
	g := lcgGrid(16, 12, 42)
	for _, k := range allKernels() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			want := Apply(k, g)
			halo := Pattern(k).MaxAbsOffset(g.W)
			got := grid.New(g.W, g.H)
			// Uneven band cuts, deliberately not row-aligned.
			cuts := []int64{0, 7, 30, 31, 64, 100, g.Len()}
			for i := 0; i+1 < len(cuts); i++ {
				start, end := cuts[i], cuts[i+1]
				lo, hi := grid.HaloRange(start, end, halo, g.Len())
				b := grid.BandOf(g, start, end, lo, hi)
				out := make([]float64, end-start)
				k.ApplyBand(b, out)
				copy(got.Data[start:end], out)
			}
			if !want.Equal(got) {
				t.Errorf("banded result differs from sequential (max diff %g)", want.MaxAbsDiff(got))
			}
		})
	}
}

func TestFlowRoutingDirections(t *testing.T) {
	// A tilted plane drains toward its lowest corner.
	g := grid.New(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			g.Set(r, c, float64(r+c)) // lowest at (0,0): interior cells point NW
		}
	}
	dirs := Apply(FlowRouting{}, g)
	if got := int(dirs.At(2, 2)); got != DirNW {
		t.Errorf("interior direction = %d, want DirNW", got)
	}
	// The global minimum is a pit.
	if got := int(dirs.At(0, 0)); got != DirNone {
		t.Errorf("minimum cell direction = %d, want DirNone", got)
	}
}

func TestFlowRoutingDeterministicTieBreak(t *testing.T) {
	// A flat grid has no strictly lower neighbor anywhere: all DirNone.
	g := grid.New(5, 5)
	dirs := Apply(FlowRouting{}, g)
	for _, v := range dirs.Data {
		if v != DirNone {
			t.Fatalf("flat grid produced direction %v", v)
		}
	}
}

func TestFlowRoutingCodesInRange(t *testing.T) {
	dirs := Apply(FlowRouting{}, lcgGrid(20, 20, 7))
	for i, v := range dirs.Data {
		if v != math.Trunc(v) || v < 0 || v > 8 {
			t.Fatalf("element %d: direction %v out of range", i, v)
		}
	}
}

func TestDirStepRoundTrip(t *testing.T) {
	for code := DirNW; code <= DirW; code++ {
		dr, dc := DirStep(code)
		if dr == 0 && dc == 0 {
			t.Errorf("code %d has zero step", code)
		}
	}
	if dr, dc := DirStep(DirNone); dr != 0 || dc != 0 {
		t.Error("DirNone must have zero step")
	}
}

func TestFlowAccumulationCountsInflow(t *testing.T) {
	// Directions: everything in row 0 points E except the last cell.
	// Build a 1x4-like scenario inside a 3x4 grid of DirNone.
	dirs := grid.New(4, 3)
	dirs.Set(1, 0, DirE)
	dirs.Set(1, 1, DirE)
	dirs.Set(1, 2, DirE)
	acc := Apply(FlowAccumulation{}, dirs)
	// Local step: cell (1,1) receives from (1,0) only: 1 + 1 = 2.
	if got := acc.At(1, 1); got != 2 {
		t.Errorf("acc(1,1) = %v, want 2", got)
	}
	// Cell (1,3) receives from (1,2): 2.
	if got := acc.At(1, 3); got != 2 {
		t.Errorf("acc(1,3) = %v, want 2", got)
	}
	// Cell (1,0) receives nothing: 1.
	if got := acc.At(1, 0); got != 1 {
		t.Errorf("acc(1,0) = %v, want 1", got)
	}
}

func TestFlowAccumulationNoSelfInflowAtBorders(t *testing.T) {
	// A border cell whose clamped neighbor coincides with itself must not
	// count itself as inflow: with all directions DirNone, every cell is 1.
	dirs := grid.New(4, 4)
	acc := Apply(FlowAccumulation{}, dirs)
	for _, v := range acc.Data {
		if v != 1 {
			t.Fatalf("accumulation with no flow = %v, want all 1", v)
		}
	}
}

func TestAccumulateChain(t *testing.T) {
	// A straight W→E channel: accumulation grows 1,2,3,...,W along the row.
	dirs := grid.New(5, 1)
	for c := 0; c < 4; c++ {
		dirs.Set(0, c, DirE)
	}
	acc := Accumulate(dirs)
	for c := 0; c < 5; c++ {
		if got := acc.At(0, c); got != float64(c+1) {
			t.Errorf("acc(0,%d) = %v, want %d", c, got, c+1)
		}
	}
}

func TestAccumulateConservation(t *testing.T) {
	// On a random terrain, every cell contributes exactly one unit that
	// ends in some pit or drains off the map; accumulation at any cell can
	// never exceed the cell count, and the minimum is 1.
	g := lcgGrid(12, 9, 3)
	dirs := Apply(FlowRouting{}, g)
	acc := Accumulate(dirs)
	for i, v := range acc.Data {
		if v < 1 || v > float64(g.Len()) {
			t.Fatalf("acc[%d] = %v out of range", i, v)
		}
	}
}

func TestGaussianPreservesConstantField(t *testing.T) {
	g := grid.New(8, 8)
	for i := range g.Data {
		g.Data[i] = 3.25
	}
	out := Apply(Gaussian{}, g)
	for i, v := range out.Data {
		if v != 3.25 {
			t.Fatalf("element %d: %v, want 3.25 (weights must sum to 1)", i, v)
		}
	}
}

func TestGaussianSmoothsImpulse(t *testing.T) {
	g := grid.New(5, 5)
	g.Set(2, 2, 16)
	out := Apply(Gaussian{}, g)
	if out.At(2, 2) != 4 {
		t.Errorf("center = %v, want 4 (16·4/16)", out.At(2, 2))
	}
	if out.At(2, 1) != 2 || out.At(1, 1) != 1 {
		t.Errorf("edge %v corner %v, want 2 and 1", out.At(2, 1), out.At(1, 1))
	}
	if out.At(0, 0) != 0 {
		t.Errorf("far corner = %v, want 0", out.At(0, 0))
	}
}

func TestMedianSuppressesImpulse(t *testing.T) {
	g := grid.New(5, 5)
	g.Set(2, 2, 1000) // single speckle
	out := Apply(Median{}, g)
	if out.At(2, 2) != 0 {
		t.Errorf("median at speckle = %v, want 0", out.At(2, 2))
	}
}

func TestMedianIdempotentOnConstant(t *testing.T) {
	g := grid.New(6, 4)
	for i := range g.Data {
		g.Data[i] = -7
	}
	out := Apply(Median{}, g)
	if !out.Equal(g) {
		t.Error("median of constant field changed values")
	}
}

func TestMedianIsOrderStatistic(t *testing.T) {
	// The median of any 3×3 window is one of its inputs and lies between
	// the window min and max.
	g := lcgGrid(10, 10, 11)
	out := Apply(Median{}, g)
	var mn, mx float64 = math.Inf(1), math.Inf(-1)
	for _, v := range g.Data {
		mn, mx = math.Min(mn, v), math.Max(mx, v)
	}
	for i, v := range out.Data {
		if v < mn || v > mx {
			t.Fatalf("median[%d] = %v outside input range [%v,%v]", i, v, mn, mx)
		}
	}
}

func TestStrideKernelClampsAtEnds(t *testing.T) {
	g := grid.New(10, 1)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	out := Apply(StrideKernel{Stride: 3}, g)
	// Element 0: left clamps to 0, right = 3 → 0.5·0 + 0.25·(0+3) = 0.75.
	if out.At(0, 0) != 0.75 {
		t.Errorf("out[0] = %v, want 0.75", out.At(0, 0))
	}
	// Interior element 5: 0.5·5 + 0.25·(2+8) = 5.
	if out.At(0, 5) != 5 {
		t.Errorf("out[5] = %v, want 5", out.At(0, 5))
	}
}

func TestSlopeFlatIsZeroTiltIsConstant(t *testing.T) {
	flat := grid.New(8, 8)
	for _, v := range Apply(Slope{}, flat).Data {
		if v != 0 {
			t.Fatalf("flat terrain has slope %v", v)
		}
	}
	// A plane z = 2x has |∇z| = 2 away from the clamped borders.
	tilt := grid.New(8, 8)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			tilt.Set(r, c, 2*float64(c))
		}
	}
	slope := Apply(Slope{}, tilt)
	for r := 1; r < 7; r++ {
		for c := 1; c < 7; c++ {
			if math.Abs(slope.At(r, c)-2) > 1e-12 {
				t.Fatalf("slope(%d,%d) = %v, want 2", r, c, slope.At(r, c))
			}
		}
	}
}

func TestDiffusionConservesConstantAndContracts(t *testing.T) {
	flat := grid.New(8, 8)
	for i := range flat.Data {
		flat.Data[i] = 5
	}
	if !Apply(Diffusion{}, flat).Equal(flat) {
		t.Error("diffusion moved a constant field")
	}
	// An impulse must spread: center decreases, neighbors increase.
	g := grid.New(5, 5)
	g.Set(2, 2, 16)
	out := Apply(Diffusion{}, g)
	if out.At(2, 2) >= 16 || out.At(2, 1) <= 0 {
		t.Errorf("impulse did not diffuse: center %v neighbor %v", out.At(2, 2), out.At(2, 1))
	}
}

func TestDiffusionFourNeighborHaloSuffices(t *testing.T) {
	// The 4-neighbor pattern reaches only ±W: a band with that halo must
	// reproduce the sequential result (regression against accidentally
	// reading diagonals).
	g := lcgGrid(12, 10, 21)
	k := Diffusion{}
	if got := Pattern(k).MaxAbsOffset(g.W); got != int64(g.W) {
		t.Fatalf("4-neighbor reach = %d, want %d", got, g.W)
	}
	want := Apply(k, g)
	mid := g.Len() / 2
	got := grid.New(g.W, g.H)
	for _, span := range [][2]int64{{0, mid}, {mid, g.Len()}} {
		lo, hi := grid.HaloRange(span[0], span[1], int64(g.W), g.Len())
		b := grid.BandOf(g, span[0], span[1], lo, hi)
		out := make([]float64, span[1]-span[0])
		k.ApplyBand(b, out)
		copy(got.Data[span[0]:span[1]], out)
	}
	if !want.Equal(got) {
		t.Error("diffusion banded result differs with exact 4-neighbor halo")
	}
}

func TestHorizontalBlurStaysInRow(t *testing.T) {
	// Two rows with very different magnitudes: blurring one row must not
	// leak values from the other, even at row ends.
	g := grid.New(6, 2)
	for c := 0; c < 6; c++ {
		g.Set(0, c, 1)
		g.Set(1, c, 1000)
	}
	out := Apply(HorizontalBlur{Radius: 2}, g)
	for c := 0; c < 6; c++ {
		if out.At(0, c) != 1 {
			t.Errorf("row 0 col %d = %v, want 1 (no cross-row leak)", c, out.At(0, c))
		}
		if out.At(1, c) != 1000 {
			t.Errorf("row 1 col %d = %v, want 1000", c, out.At(1, c))
		}
	}
}

func TestHorizontalBlurAverages(t *testing.T) {
	g := grid.New(5, 1)
	copy(g.Data, []float64{0, 10, 20, 30, 40})
	out := Apply(HorizontalBlur{Radius: 1}, g)
	// Interior: mean of the 3-window; ends clamp (duplicate the edge).
	if out.At(0, 2) != 20 {
		t.Errorf("center = %v, want 20", out.At(0, 2))
	}
	if got := out.At(0, 0); got != (0+0+10)/3.0 {
		t.Errorf("left edge = %v", got)
	}
}

func TestHorizontalBlurReachIndependentOfWidth(t *testing.T) {
	k := HorizontalBlur{Radius: 3}
	if got := Pattern(k).MaxAbsOffset(100000); got != 3 {
		t.Errorf("reach = %d, want 3 regardless of width", got)
	}
	if (HorizontalBlur{}).radius() != 1 {
		t.Error("zero radius must default to 1")
	}
}

func TestScatterKernelOffsetsAndClamping(t *testing.T) {
	k := ScatterKernel{Strides: []int64{2, 5}}
	offs := Pattern(k).Resolve(100)
	want := []int64{-2, 2, -5, 5}
	if len(offs) != len(want) {
		t.Fatalf("offsets %v", offs)
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets %v, want %v", offs, want)
		}
	}
	// Constant field is a fixed point: 0.5·c + 0.5·c = c.
	g := grid.New(10, 1)
	for i := range g.Data {
		g.Data[i] = 4
	}
	if out := Apply(k, g); !out.Equal(g) {
		t.Error("scatter kernel not identity on constant field")
	}
}

func TestRegistryDefaults(t *testing.T) {
	r := Default()
	names := r.Names()
	want := []string{
		"flow-routing", "flow-accumulation", "gaussian-filter", "median-filter",
		"surface-slope", "diffusion",
	}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		k, ok := r.Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) failed", n)
		}
		if k.Description() == "" {
			t.Errorf("%s has no description", n)
		}
		if k.Weight() <= 0 {
			t.Errorf("%s has non-positive weight", n)
		}
	}
}

func TestRegistryFeaturesDerivation(t *testing.T) {
	fr := Default().Features()
	p, ok := fr.Lookup("flow-routing")
	if !ok {
		t.Fatal("features registry missing flow-routing")
	}
	if p.MaxAbsOffset(100) != 101 {
		t.Errorf("flow-routing reach = %d, want 101", p.MaxAbsOffset(100))
	}
}

// Property: banding invariance holds for arbitrary cut positions.
func TestBandingInvarianceProperty(t *testing.T) {
	g := lcgGrid(8, 8, 99)
	k := Gaussian{}
	want := Apply(k, g)
	halo := Pattern(k).MaxAbsOffset(g.W)
	prop := func(cutRaw uint16) bool {
		cut := int64(cutRaw)%(g.Len()-1) + 1
		got := grid.New(g.W, g.H)
		for _, span := range [][2]int64{{0, cut}, {cut, g.Len()}} {
			lo, hi := grid.HaloRange(span[0], span[1], halo, g.Len())
			b := grid.BandOf(g, span[0], span[1], lo, hi)
			out := make([]float64, span[1]-span[0])
			k.ApplyBand(b, out)
			copy(got.Data[span[0]:span[1]], out)
		}
		return want.Equal(got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
