package kernels

import (
	"fmt"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
)

// NodeKind classifies a DAG node by the operator family it runs.
type NodeKind int

const (
	// KindKernel is a stencil kernel from the kernel Registry.
	KindKernel NodeKind = iota
	// KindCombine is an element-wise join of two parent nodes.
	KindCombine
	// KindReduce is a terminal aggregation from the ReducerRegistry.
	KindReduce
)

func (k NodeKind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindCombine:
		return "combine"
	case KindReduce:
		return "reduce"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one stage of an operator DAG. A kernel node with no parents
// reads the DAG input; every other node consumes the output of its
// parents.
type Node struct {
	// ID names the node within the DAG; unique, non-empty.
	ID string
	// Kind selects the operator family.
	Kind NodeKind
	// Op is the operator name, resolved against the registry matching
	// Kind.
	Op string
	// Parents are the IDs of the nodes whose output this node consumes:
	// none or one for a kernel (none means the DAG input), exactly two
	// for a combine, exactly one for a reduce.
	Parents []string
}

// DAG is a named operator graph submitted for pushdown execution. The
// graph must be acyclic with exactly one sink; if the sink is a reduce,
// its parent is the DAG's grid output (the raster committed back to the
// file system) and the reduce aggregate travels back to the client.
type DAG struct {
	Name  string
	Nodes []Node
}

// Chain builds a linear DAG over the named kernels, optionally terminated
// by a reducer. Node IDs are "s0", "s1", … in stage order.
func Chain(name string, ops []string, reduce string) DAG {
	d := DAG{Name: name}
	var prev []string
	for i, op := range ops {
		id := fmt.Sprintf("s%d", i)
		d.Nodes = append(d.Nodes, Node{ID: id, Kind: KindKernel, Op: op, Parents: prev})
		prev = []string{id}
	}
	if reduce != "" {
		d.Nodes = append(d.Nodes, Node{
			ID: fmt.Sprintf("s%d", len(ops)), Kind: KindReduce, Op: reduce, Parents: prev,
		})
	}
	return d
}

// index returns the position of each node ID, or an error on duplicates.
func (d DAG) index() (map[string]int, error) {
	idx := make(map[string]int, len(d.Nodes))
	for i, n := range d.Nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("kernels: dag %q: node %d has an empty ID", d.Name, i)
		}
		if _, dup := idx[n.ID]; dup {
			return nil, fmt.Errorf("kernels: dag %q: duplicate node ID %q", d.Name, n.ID)
		}
		idx[n.ID] = i
	}
	return idx, nil
}

// TopoOrder returns node indexes in a deterministic topological order:
// among ready nodes, the one declared first runs first. It fails on
// cycles and unknown parents.
func (d DAG) TopoOrder() ([]int, error) {
	idx, err := d.index()
	if err != nil {
		return nil, err
	}
	placed := make([]bool, len(d.Nodes))
	order := make([]int, 0, len(d.Nodes))
	for len(order) < len(d.Nodes) {
		progressed := false
		for i, n := range d.Nodes {
			if placed[i] {
				continue
			}
			ready := true
			for _, p := range n.Parents {
				j, ok := idx[p]
				if !ok {
					return nil, fmt.Errorf("kernels: dag %q: node %q names unknown parent %q", d.Name, n.ID, p)
				}
				if j == i {
					return nil, fmt.Errorf("kernels: dag %q: node %q is its own parent", d.Name, n.ID)
				}
				if !placed[j] {
					ready = false
					break
				}
			}
			if ready {
				placed[i] = true
				order = append(order, i)
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("kernels: dag %q has a cycle", d.Name)
		}
	}
	return order, nil
}

// consumers returns, per node index, the indexes of nodes consuming it.
func (d DAG) consumers(idx map[string]int) [][]int {
	out := make([][]int, len(d.Nodes))
	for i, n := range d.Nodes {
		for _, p := range n.Parents {
			j := idx[p]
			out[j] = append(out[j], i)
		}
	}
	return out
}

// Sink returns the index of the DAG's unique sink (the node no other node
// consumes).
func (d DAG) Sink() (int, error) {
	idx, err := d.index()
	if err != nil {
		return -1, err
	}
	cons := d.consumers(idx)
	sink := -1
	for i := range d.Nodes {
		if len(cons[i]) == 0 {
			if sink >= 0 {
				return -1, fmt.Errorf("kernels: dag %q has multiple sinks (%q and %q)",
					d.Name, d.Nodes[sink].ID, d.Nodes[i].ID)
			}
			sink = i
		}
	}
	if sink < 0 {
		return -1, fmt.Errorf("kernels: dag %q has no sink", d.Name)
	}
	return sink, nil
}

// Validate checks the DAG's structure and resolves every operator against
// the given registries: acyclic, one sink, kernels with at most one
// parent, combines with exactly two distinct parents, and at most one
// reduce, which must be the sink with exactly one parent.
func (d DAG) Validate(reg *Registry, combs *CombinerRegistry, reds *ReducerRegistry) error {
	if d.Name == "" {
		return fmt.Errorf("kernels: dag with empty name")
	}
	if len(d.Nodes) == 0 {
		return fmt.Errorf("kernels: dag %q has no nodes", d.Name)
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	sink, err := d.Sink()
	if err != nil {
		return err
	}
	reduces := 0
	for i, n := range d.Nodes {
		switch n.Kind {
		case KindKernel:
			if len(n.Parents) > 1 {
				return fmt.Errorf("kernels: dag %q: kernel node %q has %d parents, want at most 1", d.Name, n.ID, len(n.Parents))
			}
			if _, ok := reg.Lookup(n.Op); !ok {
				return fmt.Errorf("kernels: dag %q: node %q: unknown kernel %q (known: %v)", d.Name, n.ID, n.Op, reg.Names())
			}
		case KindCombine:
			if len(n.Parents) != 2 || n.Parents[0] == n.Parents[1] {
				return fmt.Errorf("kernels: dag %q: combine node %q needs exactly two distinct parents, got %v", d.Name, n.ID, n.Parents)
			}
			if _, ok := combs.Lookup(n.Op); !ok {
				return fmt.Errorf("kernels: dag %q: node %q: unknown combiner %q (known: %v)", d.Name, n.ID, n.Op, combs.Names())
			}
		case KindReduce:
			reduces++
			if i != sink {
				return fmt.Errorf("kernels: dag %q: reduce node %q must be the sink", d.Name, n.ID)
			}
			if len(n.Parents) != 1 {
				return fmt.Errorf("kernels: dag %q: reduce node %q needs exactly one parent, got %v", d.Name, n.ID, n.Parents)
			}
			if _, ok := reds.Lookup(n.Op); !ok {
				return fmt.Errorf("kernels: dag %q: node %q: unknown reducer %q (known: %v)", d.Name, n.ID, n.Op, reds.Names())
			}
		default:
			return fmt.Errorf("kernels: dag %q: node %q has unknown kind %d", d.Name, n.ID, int(n.Kind))
		}
	}
	if reduces > 1 {
		return fmt.Errorf("kernels: dag %q has %d reduce nodes, want at most 1", d.Name, reduces)
	}
	return nil
}

// ReduceNode returns the index of the terminal reduce, or -1.
func (d DAG) ReduceNode() int {
	for i, n := range d.Nodes {
		if n.Kind == KindReduce {
			return i
		}
	}
	return -1
}

// GridOutput returns the index of the node whose raster the DAG commits:
// the sink, or the reduce's parent when the sink is a reduce.
func (d DAG) GridOutput() (int, error) {
	sink, err := d.Sink()
	if err != nil {
		return -1, err
	}
	if d.Nodes[sink].Kind != KindReduce {
		return sink, nil
	}
	idx, err := d.index()
	if err != nil {
		return -1, err
	}
	return idx[d.Nodes[sink].Parents[0]], nil
}

// ownPattern is the node's own dependence: the kernel's registered
// pattern, or a pure self-reference for combines and reduces.
func (d DAG) ownPattern(n Node, reg *Registry) (features.Pattern, error) {
	if n.Kind == KindKernel {
		k, ok := reg.Lookup(n.Op)
		if !ok {
			return features.Pattern{}, fmt.Errorf("kernels: dag %q: unknown kernel %q", d.Name, n.Op)
		}
		return Pattern(k), nil
	}
	return features.Pattern{Name: n.Op, Offsets: []features.Offset{{}}}, nil
}

// NodePatterns returns each node's composed dependence on the DAG input,
// indexed like d.Nodes: chains Minkowski-sum stage offsets, joins union
// the branch compositions (per-direction maxima of reach), and
// zero-offset stages compose as the identity.
func (d DAG) NodePatterns(reg *Registry) ([]features.Pattern, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	idx, _ := d.index()
	pats := make([]features.Pattern, len(d.Nodes))
	for _, i := range order {
		n := d.Nodes[i]
		own, err := d.ownPattern(n, reg)
		if err != nil {
			return nil, err
		}
		base := features.Compose(n.ID) // self-reference for input readers
		for pi, p := range n.Parents {
			if pi == 0 {
				base = pats[idx[p]]
			} else {
				base = features.UnionOffsets(n.ID, base, pats[idx[p]])
			}
		}
		pats[i] = features.Compose(n.ID+"/"+own.Name, base, own)
	}
	return pats, nil
}

// InputPattern returns the sink's composed dependence on the DAG input —
// the pattern the whole pipeline presents to the prediction core and the
// reach the I/O lower bound is computed from.
func (d DAG) InputPattern(reg *Registry) (features.Pattern, error) {
	pats, err := d.NodePatterns(reg)
	if err != nil {
		return features.Pattern{}, err
	}
	sink, err := d.Sink()
	if err != nil {
		return features.Pattern{}, err
	}
	p := pats[sink]
	p.Name = d.Name
	return p, nil
}

// ApplyDAG evaluates the DAG sequentially over a whole in-memory grid and
// returns the grid-output node's raster — the byte-exact reference every
// distributed pipeline execution must reproduce. The terminal reduce, if
// any, is not folded here; use ReduceStriped on the returned grid.
func ApplyDAG(d DAG, reg *Registry, combs *CombinerRegistry, in *grid.Grid) (*grid.Grid, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	idx, _ := d.index()
	gridOut, err := d.GridOutput()
	if err != nil {
		return nil, err
	}
	vals := make([]*grid.Grid, len(d.Nodes))
	for _, i := range order {
		n := d.Nodes[i]
		switch n.Kind {
		case KindKernel:
			k, ok := reg.Lookup(n.Op)
			if !ok {
				return nil, fmt.Errorf("kernels: dag %q: unknown kernel %q", d.Name, n.Op)
			}
			src := in
			if len(n.Parents) == 1 {
				src = vals[idx[n.Parents[0]]]
			}
			vals[i] = Apply(k, src)
		case KindCombine:
			c, ok := combs.Lookup(n.Op)
			if !ok {
				return nil, fmt.Errorf("kernels: dag %q: unknown combiner %q", d.Name, n.Op)
			}
			a, b := vals[idx[n.Parents[0]]], vals[idx[n.Parents[1]]]
			out := grid.New(a.W, a.H)
			for j := range out.Data {
				out.Data[j] = c.Combine(a.Data[j], b.Data[j])
			}
			vals[i] = out
		case KindReduce:
			// Terminal; nothing to materialize.
		}
	}
	if vals[gridOut] == nil {
		return nil, fmt.Errorf("kernels: dag %q produced no grid output", d.Name)
	}
	return vals[gridOut], nil
}

// ReduceStriped folds a reducer over a grid one strip at a time, merging
// the per-strip partials in ascending strip order with a single Merge
// call. This canonical fold is invariant to which server computed which
// strip, so a pipeline reduce reproduces it bit-for-bit even when crashes
// reassign strips mid-run.
func ReduceStriped(r Reducer, g *grid.Grid, stripElems int64) []float64 {
	if stripElems <= 0 {
		stripElems = g.Len()
	}
	var partials [][]float64
	for lo := int64(0); lo < g.Len(); lo += stripElems {
		hi := lo + stripElems
		if hi > g.Len() {
			hi = g.Len()
		}
		b := grid.BandOf(g, lo, hi, lo, hi)
		partials = append(partials, r.ReduceBand(b))
	}
	return r.Merge(partials)
}
