// Package kernels implements the paper's data analysis kernels (Table I):
// flow-routing and flow-accumulation from GIS terrain analysis, and the 2D
// Gaussian filter from medical image processing, plus a median filter and
// a configurable stride kernel used in ablations. Each kernel declares its
// dependence pattern in the Kernel Features format and computes over a
// grid.Band, so exactly the same code runs on a compute node (Traditional
// Storage), on a storage server over remotely fetched halos (Normal Active
// Storage), and on a storage server over local replicas (DAS).
package kernels

import (
	"fmt"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
)

// Kernel is one offloadable data analysis operation.
type Kernel interface {
	// Name is the operator name used in kernel-features records and
	// active storage requests.
	Name() string
	// Description is the human-readable summary (Table I).
	Description() string
	// Offsets is the kernel's symbolic dependence pattern.
	Offsets() []features.Offset
	// Weight is the relative per-element compute cost (1.0 = flow-routing).
	// The cluster's cost model multiplies it by a base per-element time.
	Weight() float64
	// ApplyBand computes output elements [b.Start, b.End) into out, which
	// has length b.OwnedLen(). The band must include the halo the
	// dependence pattern requires (see features.Pattern.MaxAbsOffset).
	ApplyBand(b *grid.Band, out []float64)
}

// Pattern returns the kernel's dependence pattern as a features record.
func Pattern(k Kernel) features.Pattern {
	return features.Pattern{Name: k.Name(), Offsets: k.Offsets()}
}

// Apply runs a kernel sequentially over a whole grid: the reference result
// every distributed scheme must reproduce exactly.
func Apply(k Kernel, g *grid.Grid) *grid.Grid {
	b := grid.BandOf(g, 0, g.Len(), 0, g.Len())
	out := grid.New(g.W, g.H)
	k.ApplyBand(b, out.Data)
	return out
}

// Registry maps operator names to kernels, in registration order.
type Registry struct {
	byName map[string]Kernel
	order  []string
}

// NewRegistry returns an empty kernel registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Kernel)}
}

// Register adds a kernel; re-registering a name replaces it.
func (r *Registry) Register(k Kernel) {
	if k.Name() == "" {
		panic("kernels: kernel with empty name")
	}
	if _, exists := r.byName[k.Name()]; !exists {
		r.order = append(r.order, k.Name())
	}
	r.byName[k.Name()] = k
}

// Lookup returns the kernel for an operator name.
func (r *Registry) Lookup(name string) (Kernel, bool) {
	k, ok := r.byName[name]
	return k, ok
}

// Names returns registered names in order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Features derives the kernel-features registry (§III-B) from the
// registered kernels: the description file the active storage client
// consults.
func (r *Registry) Features() *features.Registry {
	fr := features.NewRegistry()
	for _, name := range r.order {
		if err := fr.Register(Pattern(r.byName[name])); err != nil {
			panic(fmt.Sprintf("kernels: %v", err))
		}
	}
	return fr
}

// Default returns a registry with the paper's three evaluation kernels,
// the median filter its introduction motivates, and the two further
// operations §III-C names: surface slope analysis (8-neighbor) and a
// 4-neighbor smoothing step.
func Default() *Registry {
	r := NewRegistry()
	r.Register(FlowRouting{})
	r.Register(FlowAccumulation{})
	r.Register(Gaussian{})
	r.Register(Median{})
	r.Register(Slope{})
	r.Register(Diffusion{})
	return r
}

// stencil3x3 drives f over every owned element with its 3×3 neighborhood,
// clamping coordinates at raster borders (boundary cells reuse their
// nearest in-grid neighbor, so "data elements on boundary" never
// communicate, matching the paper's exclusion of boundary elements).
// w is indexed [dr+1][dc+1].
func stencil3x3(b *grid.Band, out []float64, f func(w *[3][3]float64) float64) {
	width := int64(b.Width)
	height := int(b.GlobalLen / width)
	var w [3][3]float64
	for i := b.Start; i < b.End; i++ {
		r, c := b.RowCol(i)
		for dr := -1; dr <= 1; dr++ {
			nr := clamp(r+dr, 0, height-1)
			for dc := -1; dc <= 1; dc++ {
				nc := clamp(c+dc, 0, b.Width-1)
				w[dr+1][dc+1] = b.At(int64(nr)*width + int64(nc))
			}
		}
		out[i-b.Start] = f(&w)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
