package kernels

import (
	"math"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
)

// Slope is the surface slope analysis operation §III-C lists among the
// 8-neighbor kernels: the terrain gradient magnitude at each cell by
// Horn's third-order finite difference over the 3×3 neighborhood, in
// elevation units per cell spacing.
type Slope struct{}

func (Slope) Name() string { return "surface-slope" }
func (Slope) Description() string {
	return "Terrain analysis operation from GIS: gradient magnitude of the " +
		"elevation surface by Horn's method over the 3×3 neighborhood."
}
func (Slope) Offsets() []features.Offset { return features.EightNeighbor() }
func (Slope) Weight() float64            { return 1.3 }

func (Slope) ApplyBand(b *grid.Band, out []float64) {
	stencil3x3(b, out, func(w *[3][3]float64) float64 {
		// Horn (1981): weighted central differences along each axis.
		dzdx := ((w[0][2] + 2*w[1][2] + w[2][2]) - (w[0][0] + 2*w[1][0] + w[2][0])) / 8
		dzdy := ((w[2][0] + 2*w[2][1] + w[2][2]) - (w[0][0] + 2*w[0][1] + w[0][2])) / 8
		return math.Sqrt(dzdx*dzdx + dzdy*dzdy)
	})
}

// Diffusion is a 4-neighbor kernel — the other dependence family §III-C
// calls out as most useful. One Jacobi step of the heat equation: each
// cell moves a quarter of the way toward the mean of its von Neumann
// neighborhood. Its halo is half the 8-neighbor reach (±W), which the
// layout planner exploits.
type Diffusion struct{}

func (Diffusion) Name() string { return "diffusion" }
func (Diffusion) Description() string {
	return "4-neighbor smoothing: one Jacobi step of the heat equation over " +
		"the von Neumann neighborhood (digital elevation model conditioning)."
}
func (Diffusion) Offsets() []features.Offset { return features.FourNeighbor() }
func (Diffusion) Weight() float64            { return 0.8 }

func (Diffusion) ApplyBand(b *grid.Band, out []float64) {
	width := int64(b.Width)
	height := int(b.GlobalLen / width)
	for i := b.Start; i < b.End; i++ {
		r, c := b.RowCol(i)
		center := b.At(i)
		sum := 0.0
		for _, d := range [4][2]int{{-1, 0}, {0, -1}, {0, 1}, {1, 0}} {
			nr := clamp(r+d[0], 0, height-1)
			nc := clamp(c+d[1], 0, b.Width-1)
			sum += b.At(int64(nr)*width + int64(nc))
		}
		out[i-b.Start] = 0.75*center + 0.25*(sum/4)
	}
}
