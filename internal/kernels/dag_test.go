package kernels

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/workload"
)

func testRegistries() (*Registry, *CombinerRegistry, *ReducerRegistry) {
	return Default(), DefaultCombiners(), DefaultReducers()
}

func TestChainDAGValidatesAndOrders(t *testing.T) {
	reg, combs, reds := testRegistries()
	d := Chain("terrain", []string{"gaussian-filter", "flow-routing", "flow-accumulation"}, "stats")
	if err := d.Validate(reg, combs, reds); err != nil {
		t.Fatal(err)
	}
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("chain topo order = %v, want identity", order)
		}
	}
	gridOut, err := d.GridOutput()
	if err != nil {
		t.Fatal(err)
	}
	if gridOut != 2 {
		t.Fatalf("grid output node = %d, want 2 (the reduce's parent)", gridOut)
	}
	if rn := d.ReduceNode(); rn != 3 {
		t.Fatalf("reduce node = %d, want 3", rn)
	}
}

func TestDAGValidateRejectsMalformedGraphs(t *testing.T) {
	reg, combs, reds := testRegistries()
	cases := []struct {
		name string
		d    DAG
		want string
	}{
		{"empty", DAG{Name: "x"}, "no nodes"},
		{"unknown kernel", Chain("x", []string{"nope"}, ""), "unknown kernel"},
		{"unknown reducer", Chain("x", []string{"gaussian-filter"}, "nope"), "unknown reducer"},
		{"cycle", DAG{Name: "x", Nodes: []Node{
			{ID: "a", Kind: KindKernel, Op: "gaussian-filter", Parents: []string{"b"}},
			{ID: "b", Kind: KindKernel, Op: "gaussian-filter", Parents: []string{"a"}},
		}}, "cycle"},
		{"dup id", DAG{Name: "x", Nodes: []Node{
			{ID: "a", Kind: KindKernel, Op: "gaussian-filter"},
			{ID: "a", Kind: KindKernel, Op: "median-filter"},
		}}, "duplicate node ID"},
		{"unknown parent", DAG{Name: "x", Nodes: []Node{
			{ID: "a", Kind: KindKernel, Op: "gaussian-filter", Parents: []string{"ghost"}},
		}}, "unknown parent"},
		{"two sinks", DAG{Name: "x", Nodes: []Node{
			{ID: "a", Kind: KindKernel, Op: "gaussian-filter"},
			{ID: "b", Kind: KindKernel, Op: "median-filter"},
		}}, "multiple sinks"},
		{"combine one parent", DAG{Name: "x", Nodes: []Node{
			{ID: "a", Kind: KindKernel, Op: "gaussian-filter"},
			{ID: "c", Kind: KindCombine, Op: "add", Parents: []string{"a", "a"}},
		}}, "distinct parents"},
		{"reduce mid-graph", DAG{Name: "x", Nodes: []Node{
			{ID: "a", Kind: KindKernel, Op: "gaussian-filter"},
			{ID: "r", Kind: KindReduce, Op: "stats", Parents: []string{"a"}},
			{ID: "b", Kind: KindKernel, Op: "median-filter", Parents: []string{"r"}},
		}}, "must be the sink"},
	}
	for _, c := range cases {
		err := c.d.Validate(reg, combs, reds)
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q, want mention of %q", c.name, err, c.want)
		}
	}
}

// The composed input pattern of a chain of 3×3 stencils reaches k rows in
// each direction; the reduce adds nothing.
func TestDAGInputPatternChain(t *testing.T) {
	reg, _, _ := testRegistries()
	const width = 512
	d := Chain("terrain", []string{"gaussian-filter", "flow-routing", "flow-accumulation"}, "stats")
	pat, err := d.InputPattern(reg)
	if err != nil {
		t.Fatal(err)
	}
	back, fwd := pat.Reach(width)
	want := int64(3 * (width + 1)) // three 3×3 stencils, each reaching one row ± one column
	if back != want || fwd != want {
		t.Fatalf("chain reach = (%d, %d), want (%d, %d)", back, fwd, want, want)
	}
}

// A diamond's composed reach is the per-direction maximum over branches,
// and the element-wise combine adds none of its own.
func TestDAGInputPatternDiamond(t *testing.T) {
	reg, combs, reds := testRegistries()
	const width = 512
	d := DAG{Name: "diamond", Nodes: []Node{
		{ID: "blur", Kind: KindKernel, Op: "gaussian-filter"},
		{ID: "deep", Kind: KindKernel, Op: "flow-routing", Parents: []string{"blur"}},
		{ID: "shallow", Kind: KindKernel, Op: "median-filter"},
		{ID: "join", Kind: KindCombine, Op: "sub", Parents: []string{"deep", "shallow"}},
	}}
	if err := d.Validate(reg, combs, reds); err != nil {
		t.Fatal(err)
	}
	pat, err := d.InputPattern(reg)
	if err != nil {
		t.Fatal(err)
	}
	back, fwd := pat.Reach(width)
	want := int64(2 * (width + 1)) // deep branch: two stencils; shallow: one
	if back != want || fwd != want {
		t.Fatalf("diamond reach = (%d, %d), want branch maxima (%d, %d)", back, fwd, want, want)
	}
}

// ApplyDAG on a chain equals manually applying each kernel in sequence.
func TestApplyDAGMatchesSequentialChain(t *testing.T) {
	reg, combs, _ := testRegistries()
	g := workload.Terrain(64, 48, 7)
	d := Chain("terrain", []string{"gaussian-filter", "flow-routing"}, "")
	got, err := ApplyDAG(d, reg, combs, g)
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := reg.Lookup("gaussian-filter")
	fr, _ := reg.Lookup("flow-routing")
	want := Apply(fr, Apply(ga, g))
	if !got.Equal(want) {
		t.Fatalf("ApplyDAG diverges from sequential chain: max|Δ| = %g", got.MaxAbsDiff(want))
	}
}

// ApplyDAG evaluates combines element-wise over both branches.
func TestApplyDAGDiamond(t *testing.T) {
	reg, combs, _ := testRegistries()
	g := workload.Terrain(64, 32, 9)
	d := DAG{Name: "diamond", Nodes: []Node{
		{ID: "a", Kind: KindKernel, Op: "gaussian-filter"},
		{ID: "b", Kind: KindKernel, Op: "median-filter"},
		{ID: "j", Kind: KindCombine, Op: "sub", Parents: []string{"a", "b"}},
	}}
	got, err := ApplyDAG(d, reg, combs, g)
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := reg.Lookup("gaussian-filter")
	md, _ := reg.Lookup("median-filter")
	a, b := Apply(ga, g), Apply(md, g)
	want := grid.New(g.W, g.H)
	for i := range want.Data {
		want.Data[i] = a.Data[i] - b.Data[i]
	}
	if !got.Equal(want) {
		t.Fatalf("diamond ApplyDAG diverges: max|Δ| = %g", got.MaxAbsDiff(want))
	}
}

// The canonical striped reduce is a fixed merge tree: folding the same
// grid with any strip size yields the same counters, and (count, min,
// max) match the single-pass reference exactly.
func TestReduceStripedCanonical(t *testing.T) {
	g := workload.Terrain(128, 64, 3)
	red := Stats{}
	whole := ReduceAll(red, g)
	for _, stripElems := range []int64{64, 128, 1024, g.Len()} {
		agg := ReduceStriped(red, g, stripElems)
		if agg[StatCount] != whole[StatCount] || agg[StatMin] != whole[StatMin] || agg[StatMax] != whole[StatMax] {
			t.Fatalf("stripElems=%d: count/min/max diverge from ReduceAll", stripElems)
		}
	}
	// Bitwise stability across equal strip sizes (the property pipeline
	// crash-reassignment relies on).
	a := ReduceStriped(red, g, 128)
	b := ReduceStriped(red, g, 128)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("striped reduce not reproducible at slot %d", i)
		}
	}
}

func TestRegistryListings(t *testing.T) {
	reg, combs, reds := testRegistries()
	ks := reg.List()
	if len(ks) != len(reg.Names()) {
		t.Fatalf("kernel list has %d entries, want %d", len(ks), len(reg.Names()))
	}
	for _, info := range ks {
		if info.Kind != "kernel" || info.Name == "" || info.Weight <= 0 || len(info.Offsets) == 0 {
			t.Fatalf("bad kernel info: %+v", info)
		}
	}
	for _, info := range reds.List() {
		if info.Kind != "reduce" || info.PartialLen <= 0 {
			t.Fatalf("bad reducer info: %+v", info)
		}
	}
	for _, info := range combs.List() {
		if info.Kind != "combine" || len(info.Offsets) != 0 {
			t.Fatalf("bad combiner info: %+v", info)
		}
	}
}
