package kernels

import (
	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
)

// Direction codes produced by FlowRouting. Code 0 marks a pit or flat cell
// (no strictly lower neighbor); codes 1–8 index the eight neighbors in
// clockwise order starting north-west.
const (
	DirNone = 0
	DirNW   = 1
	DirN    = 2
	DirNE   = 3
	DirE    = 4
	DirSE   = 5
	DirS    = 6
	DirSW   = 7
	DirW    = 8
)

// dirDelta maps a direction code to its (dr, dc) step.
var dirDelta = [9][2]int{
	DirNone: {0, 0},
	DirNW:   {-1, -1},
	DirN:    {-1, 0},
	DirNE:   {-1, 1},
	DirE:    {0, 1},
	DirSE:   {1, 1},
	DirS:    {1, 0},
	DirSW:   {1, -1},
	DirW:    {0, -1},
}

// DirStep returns the (dr, dc) step for a direction code.
func DirStep(code int) (dr, dc int) {
	d := dirDelta[code]
	return d[0], d[1]
}

// FlowRouting is the single-flow-direction (D8) operation from terrain
// analysis (paper Fig. 1): each cell drains toward its lowest 8-neighbor.
type FlowRouting struct{}

func (FlowRouting) Name() string { return "flow-routing" }
func (FlowRouting) Description() string {
	return "Basic operation of terrain analysis from GIS: assigns each cell " +
		"a flow direction toward its lowest 8-neighbor (single flow direction)."
}
func (FlowRouting) Offsets() []features.Offset { return features.EightNeighbor() }
func (FlowRouting) Weight() float64            { return 1.0 }

// ApplyBand emits the direction code of each owned cell: the clockwise
// index (1–8, from north-west) of the strictly lowest neighbor, 0 if the
// center is not higher than any neighbor. Ties choose the first neighbor
// in clockwise order, keeping the result deterministic.
func (FlowRouting) ApplyBand(b *grid.Band, out []float64) {
	stencil3x3(b, out, func(w *[3][3]float64) float64 {
		center := w[1][1]
		best, bestVal := DirNone, center
		for code := DirNW; code <= DirW; code++ {
			d := dirDelta[code]
			v := w[d[0]+1][d[1]+1]
			if v < bestVal {
				best, bestVal = code, v
			}
		}
		return float64(best)
	})
}

// FlowAccumulation is the local accumulation step from terrain analysis:
// given a direction raster (FlowRouting output), each cell's value is its
// own unit of water plus one unit per 8-neighbor draining directly into
// it. The paper treats flow-accumulation as the same 8-neighbor dependence
// pattern consuming the intermediate image flow-routing produced; the full
// basin-wide accumulation (which is a global computation) is available
// separately as Accumulate.
type FlowAccumulation struct{}

func (FlowAccumulation) Name() string { return "flow-accumulation" }
func (FlowAccumulation) Description() string {
	return "Basic operation of terrain analysis from GIS: accumulates flow as " +
		"the weight of all cells flowing into each downslope cell."
}
func (FlowAccumulation) Offsets() []features.Offset { return features.EightNeighbor() }
func (FlowAccumulation) Weight() float64            { return 1.1 }

// ApplyBand counts, for each owned cell, the neighbors whose direction
// code points back at it. Unlike the clamping stencil kernels, inflow only
// counts genuine in-grid neighbors: a clamped duplicate of the center must
// not drain into itself.
func (FlowAccumulation) ApplyBand(b *grid.Band, out []float64) {
	width := int64(b.Width)
	height := int(b.GlobalLen / width)
	for i := b.Start; i < b.End; i++ {
		r, c := b.RowCol(i)
		inflow := 1.0 // the cell's own unit
		for code := DirNW; code <= DirW; code++ {
			d := dirDelta[code]
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= height || nc < 0 || nc >= b.Width {
				continue
			}
			neighborDir := int(b.At(int64(nr)*width + int64(nc)))
			if neighborDir < DirNW || neighborDir > DirW {
				continue // not a flow direction (pit, flat, or foreign data)
			}
			// The neighbor drains into us if its direction step is the
			// exact opposite of the step that reached it.
			nd := dirDelta[neighborDir]
			if nd[0] == -d[0] && nd[1] == -d[1] {
				inflow++
			}
		}
		out[i-b.Start] = inflow
	}
}

// Accumulate computes full basin-wide flow accumulation over a direction
// raster: the number of cells (including itself) whose water eventually
// passes through each cell. It is a global computation (the reason the
// paper's offloadable kernel is the local step) and is provided for the
// terrain analysis example. Cycles cannot occur because directions follow
// strict descent; cells in flats (DirNone) simply absorb their inflow.
func Accumulate(dirs *grid.Grid) *grid.Grid {
	acc := grid.New(dirs.W, dirs.H)
	indeg := make([]int, dirs.Len())
	target := make([]int64, dirs.Len()) // downstream cell, -1 if none
	for i := range acc.Data {
		acc.Data[i] = 1
		target[i] = -1
	}
	for r := 0; r < dirs.H; r++ {
		for c := 0; c < dirs.W; c++ {
			code := int(dirs.At(r, c))
			if code == DirNone {
				continue
			}
			dr, dc := DirStep(code)
			nr, nc := r+dr, c+dc
			if nr < 0 || nr >= dirs.H || nc < 0 || nc >= dirs.W {
				continue // drains off the map
			}
			t := dirs.Idx(nr, nc)
			target[dirs.Idx(r, c)] = t
			indeg[t]++
		}
	}
	queue := make([]int64, 0, dirs.Len())
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, int64(i))
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		t := target[i]
		if t < 0 {
			continue
		}
		acc.Data[t] += acc.Data[i]
		indeg[t]--
		if indeg[t] == 0 {
			queue = append(queue, t)
		}
	}
	return acc
}
