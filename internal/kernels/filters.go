package kernels

import (
	"fmt"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
)

// Gaussian is the 3×3 2D Gaussian smoothing filter from signal and
// medical image processing (Table I): weights 1-2-1 / 2-4-2 / 1-2-1,
// normalized by 16. Borders clamp to the nearest in-grid cell.
type Gaussian struct{}

func (Gaussian) Name() string { return "gaussian-filter" }
func (Gaussian) Description() string {
	return "Basic operation of signal and medical image processing: smooths " +
		"the raw data, producing a same-size smoothed raster."
}
func (Gaussian) Offsets() []features.Offset { return features.EightNeighbor() }
func (Gaussian) Weight() float64            { return 1.2 }

func (Gaussian) ApplyBand(b *grid.Band, out []float64) {
	stencil3x3(b, out, func(w *[3][3]float64) float64 {
		return (w[0][0] + 2*w[0][1] + w[0][2] +
			2*w[1][0] + 4*w[1][1] + 2*w[1][2] +
			w[2][0] + 2*w[2][1] + w[2][2]) / 16
	})
}

// Median is the 3×3 median filter from medical image processing, the
// paper's motivating example of an 8-neighbor-dependent operation. It is
// the most compute-heavy of the bundled kernels.
type Median struct{}

func (Median) Name() string { return "median-filter" }
func (Median) Description() string {
	return "Basic operation of medical image processing: replaces each cell " +
		"with the median of its 3×3 neighborhood, suppressing speckle noise."
}
func (Median) Offsets() []features.Offset { return features.EightNeighbor() }
func (Median) Weight() float64            { return 2.5 }

func (Median) ApplyBand(b *grid.Band, out []float64) {
	stencil3x3(b, out, func(w *[3][3]float64) float64 {
		var v [9]float64
		k := 0
		for _, row := range w {
			for _, x := range row {
				v[k] = x
				k++
			}
		}
		// Insertion sort: 9 elements, branch-friendly, no allocation.
		for i := 1; i < 9; i++ {
			x := v[i]
			j := i - 1
			for j >= 0 && v[j] > x {
				v[j+1] = v[j]
				j--
			}
			v[j+1] = x
		}
		return v[4]
	})
}

// HorizontalBlur is a 1-D box blur along rows with the given radius: its
// dependence is ±1..±Radius within the row, so its reach — and therefore
// the halo the improved distribution needs — is independent of the raster
// width, unlike the 8-neighbor family. It demonstrates that the layout
// planner sizes replication from the pattern, not from a fixed rule.
type HorizontalBlur struct {
	Radius int
}

func (h HorizontalBlur) Name() string { return "horizontal-blur" }
func (h HorizontalBlur) Description() string {
	return fmt.Sprintf("1-D box blur along rows, radius %d: dependence stays "+
		"within the row regardless of raster width.", h.radius())
}
func (h HorizontalBlur) Offsets() []features.Offset {
	var offs []features.Offset
	for i := 1; i <= h.radius(); i++ {
		offs = append(offs, features.Offset{Const: int64(-i)}, features.Offset{Const: int64(i)})
	}
	return offs
}
func (h HorizontalBlur) Weight() float64 { return 0.3 * float64(h.radius()) }

func (h HorizontalBlur) radius() int {
	if h.Radius <= 0 {
		return 1
	}
	return h.Radius
}

func (h HorizontalBlur) ApplyBand(b *grid.Band, out []float64) {
	r := h.radius()
	width := int64(b.Width)
	for i := b.Start; i < b.End; i++ {
		row := i / width
		rowLo, rowHi := row*width, (row+1)*width-1
		sum, n := 0.0, 0
		for d := int64(-r); d <= int64(r); d++ {
			j := i + d
			if j < rowLo {
				j = rowLo // clamp within the row
			}
			if j > rowHi {
				j = rowHi
			}
			sum += b.At(j)
			n++
		}
		out[i-b.Start] = sum / float64(n)
	}
}

// StrideKernel is the synthetic operator of the paper's Fig. 6: each
// element depends on the two elements ±Stride away in flat element space.
// Its value is the average of the two dependencies blended with the
// center. It exists to exercise the bandwidth predictor: by choosing
// Stride relative to the strip size and server count, the dependence can
// be made perfectly local (Eq. (17) holds) or maximally hostile.
type StrideKernel struct {
	// OpName lets ablations register several strides side by side.
	OpName string
	Stride int64
	// W is the relative compute weight; zero means 1.0.
	W float64
}

func (s StrideKernel) Name() string {
	if s.OpName != "" {
		return s.OpName
	}
	return "stride-op"
}
func (s StrideKernel) Description() string {
	return "Synthetic two-dependence operator (paper Fig. 6): reads the " +
		"elements at ±stride and blends them with the center."
}
func (s StrideKernel) Offsets() []features.Offset { return features.Stride(s.Stride) }
func (s StrideKernel) Weight() float64 {
	if s.W == 0 {
		return 1.0
	}
	return s.W
}

func (s StrideKernel) ApplyBand(b *grid.Band, out []float64) {
	for i := b.Start; i < b.End; i++ {
		left := b.At(clampFlat(i-s.Stride, b.GlobalLen))
		right := b.At(clampFlat(i+s.Stride, b.GlobalLen))
		out[i-b.Start] = 0.5*b.At(i) + 0.25*(left+right)
	}
}

func clampFlat(i, total int64) int64 {
	if i < 0 {
		return 0
	}
	if i >= total {
		return total - 1
	}
	return i
}

// ScatterKernel reads dependencies at ± each of several strides: a
// synthetic worst case for active storage whose offloading cost grows
// with the number of distinct strips touched. With strides spanning k
// different strip distances, every strip needs 2k remote strips under an
// unaligned placement — the pattern the prediction core exists to reject.
type ScatterKernel struct {
	OpName  string
	Strides []int64
	W       float64
}

func (s ScatterKernel) Name() string {
	if s.OpName != "" {
		return s.OpName
	}
	return "scatter-op"
}
func (s ScatterKernel) Description() string {
	return "Synthetic multi-stride operator: averages the elements at ± each " +
		"stride with the center; a worst case for offloading."
}
func (s ScatterKernel) Offsets() []features.Offset {
	var offs []features.Offset
	for _, st := range s.Strides {
		offs = append(offs, features.Offset{Const: -st}, features.Offset{Const: st})
	}
	return offs
}
func (s ScatterKernel) Weight() float64 {
	if s.W == 0 {
		return 1.0
	}
	return s.W
}

func (s ScatterKernel) ApplyBand(b *grid.Band, out []float64) {
	n := float64(2 * len(s.Strides))
	for i := b.Start; i < b.End; i++ {
		sum := 0.0
		for _, st := range s.Strides {
			sum += b.At(clampFlat(i-st, b.GlobalLen))
			sum += b.At(clampFlat(i+st, b.GlobalLen))
		}
		out[i-b.Start] = 0.5*b.At(i) + 0.5*sum/n
	}
}
