package kernels

import (
	"fmt"
	"math"

	"github.com/hpcio/das/internal/grid"
)

// Reducer is a data-reducing operation: it folds a raster into a small
// fixed-size aggregate. Reductions are the ideal active storage workload
// the literature the paper builds on (scan-intensive database and mining
// operations) was designed for: the dependence pattern is empty, every
// server folds its local strips independently, and only the tiny partial
// aggregates cross the network. DAS's prediction core accepts them
// unconditionally — they are the case where Σ aj = 0 by construction.
type Reducer interface {
	// Name is the operator name used in requests.
	Name() string
	// Description is the human-readable summary.
	Description() string
	// PartialLen is the fixed element count of a partial aggregate.
	PartialLen() int
	// ReduceBand folds the owned range of a band into a partial aggregate
	// of length PartialLen.
	ReduceBand(b *grid.Band) []float64
	// Merge combines any number of partials into one (associative and
	// commutative, so merge order does not matter).
	Merge(partials [][]float64) []float64
	// Weight is the relative per-element compute cost.
	Weight() float64
}

// Stats computes count, sum, sum of squares, min, and max in one pass;
// Mean and StdDev interpret the aggregate.
type Stats struct{}

func (Stats) Name() string { return "stats" }
func (Stats) Description() string {
	return "Scan reduction: count, sum, sum of squares, minimum and maximum " +
		"of every element, merged across servers."
}
func (Stats) PartialLen() int { return 5 }
func (Stats) Weight() float64 { return 0.5 }

// Aggregate slot indices for Stats partials.
const (
	StatCount = iota
	StatSum
	StatSumSq
	StatMin
	StatMax
)

func (Stats) ReduceBand(b *grid.Band) []float64 {
	out := []float64{0, 0, 0, math.Inf(1), math.Inf(-1)}
	for i := b.Start; i < b.End; i++ {
		v := b.At(i)
		out[StatCount]++
		out[StatSum] += v
		out[StatSumSq] += v * v
		out[StatMin] = math.Min(out[StatMin], v)
		out[StatMax] = math.Max(out[StatMax], v)
	}
	return out
}

func (Stats) Merge(partials [][]float64) []float64 {
	out := []float64{0, 0, 0, math.Inf(1), math.Inf(-1)}
	for _, p := range partials {
		out[StatCount] += p[StatCount]
		out[StatSum] += p[StatSum]
		out[StatSumSq] += p[StatSumSq]
		out[StatMin] = math.Min(out[StatMin], p[StatMin])
		out[StatMax] = math.Max(out[StatMax], p[StatMax])
	}
	return out
}

// Mean returns the average from a Stats aggregate.
func Mean(agg []float64) float64 {
	if agg[StatCount] == 0 {
		return 0
	}
	return agg[StatSum] / agg[StatCount]
}

// StdDev returns the population standard deviation from a Stats aggregate.
func StdDev(agg []float64) float64 {
	n := agg[StatCount]
	if n == 0 {
		return 0
	}
	mean := agg[StatSum] / n
	v := agg[StatSumSq]/n - mean*mean
	if v < 0 {
		v = 0 // guard rounding
	}
	return math.Sqrt(v)
}

// Histogram counts elements into Bins equal-width buckets over [Lo, Hi);
// values outside clamp to the end buckets.
type Histogram struct {
	Bins   int
	Lo, Hi float64
}

func (h Histogram) Name() string { return "histogram" }
func (h Histogram) Description() string {
	return fmt.Sprintf("Scan reduction: %d-bin histogram over [%g, %g).", h.Bins, h.Lo, h.Hi)
}
func (h Histogram) PartialLen() int { return h.Bins }
func (Histogram) Weight() float64   { return 0.6 }

func (h Histogram) bucket(v float64) int {
	if h.Hi <= h.Lo {
		return 0
	}
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(h.Bins))
	if i < 0 {
		return 0
	}
	if i >= h.Bins {
		return h.Bins - 1
	}
	return i
}

func (h Histogram) ReduceBand(b *grid.Band) []float64 {
	out := make([]float64, h.Bins)
	for i := b.Start; i < b.End; i++ {
		out[h.bucket(b.At(i))]++
	}
	return out
}

func (h Histogram) Merge(partials [][]float64) []float64 {
	out := make([]float64, h.Bins)
	for _, p := range partials {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}

// ReduceAll runs a reducer sequentially over a whole grid: the reference
// result distributed reductions must reproduce exactly.
func ReduceAll(r Reducer, g *grid.Grid) []float64 {
	b := grid.BandOf(g, 0, g.Len(), 0, g.Len())
	return r.ReduceBand(b)
}

// ReducerRegistry maps reduction operator names, analogous to Registry.
type ReducerRegistry struct {
	byName map[string]Reducer
	order  []string
}

// NewReducerRegistry returns an empty registry.
func NewReducerRegistry() *ReducerRegistry {
	return &ReducerRegistry{byName: make(map[string]Reducer)}
}

// Register adds a reducer; re-registering a name replaces it.
func (r *ReducerRegistry) Register(red Reducer) {
	if red.Name() == "" {
		panic("kernels: reducer with empty name")
	}
	if _, exists := r.byName[red.Name()]; !exists {
		r.order = append(r.order, red.Name())
	}
	r.byName[red.Name()] = red
}

// Lookup returns the reducer for an operator name.
func (r *ReducerRegistry) Lookup(name string) (Reducer, bool) {
	red, ok := r.byName[name]
	return red, ok
}

// Names returns registered names in order.
func (r *ReducerRegistry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// DefaultReducers returns stats and a 32-bin histogram over [0, 256), a
// match for the workload generators' value ranges.
func DefaultReducers() *ReducerRegistry {
	r := NewReducerRegistry()
	r.Register(Stats{})
	r.Register(Histogram{Bins: 32, Lo: 0, Hi: 256})
	return r
}
