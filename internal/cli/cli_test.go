package cli

import (
	"strings"
	"testing"
)

func TestCheckExclusive(t *testing.T) {
	modes := func(a, b bool) []Flag {
		return []Flag{{Name: "-cache", Set: a}, {Name: "-restripe", Set: b}}
	}
	others := func(op, faults bool) []Flag {
		return []Flag{{Name: "-op", Set: op}, {Name: "-faults", Set: faults}}
	}
	cases := []struct {
		name    string
		modes   []Flag
		others  []Flag
		wantErr string
	}{
		{"nothing set", modes(false, false), others(false, false), ""},
		{"others compose freely", modes(false, false), others(true, true), ""},
		{"one mode alone", modes(true, false), others(false, false), ""},
		{"mode vs one other", modes(true, false), others(true, false), "-cache cannot be combined with -op"},
		{"mode vs both others", modes(false, true), others(true, true), "-restripe cannot be combined with -op or -faults"},
		{"two modes", modes(true, true), others(false, false), "-restripe cannot be combined with -cache"},
		{"two modes win over others", modes(true, true), others(true, true), "-restripe cannot be combined with -cache"},
	}
	for _, c := range cases {
		err := CheckExclusive(c.modes, c.others)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestCheckExclusiveThreeModes(t *testing.T) {
	err := CheckExclusive([]Flag{
		{Name: "-a", Set: true}, {Name: "-b", Set: true}, {Name: "-c", Set: true},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "-b or -c cannot be combined with -a") {
		t.Errorf("three modes: got %v", err)
	}
}
