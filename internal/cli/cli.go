// Package cli holds small helpers shared by the das command-line tools.
//
// The first resident is the exclusive-flag check: several commands grow
// report "modes" (-cache, -restripe, -list, ...) that each own the whole
// run and therefore silently ignore the analysis flags they are combined
// with. Rather than every main.go re-growing its own bespoke conflict
// walk, the tools describe their flags as Flag values and let
// CheckExclusive produce the (stable, tested) error messages.
package cli

import (
	"fmt"
	"strings"
)

// Flag is a command-line flag (or flag-like argument group, e.g. "package
// arguments") for the purposes of an exclusivity check: its user-visible
// name and whether the invocation set it.
type Flag struct {
	Name string
	Set  bool
}

// CheckExclusive rejects flag combinations that would otherwise be
// silently ignored. Every flag in modes claims the whole run: at most one
// mode may be set, and a set mode may not be combined with any set flag
// from others (flags that are fine together but meaningless under a
// mode). A nil error means the combination is coherent.
func CheckExclusive(modes []Flag, others []Flag) error {
	var set []Flag
	for _, m := range modes {
		if m.Set {
			set = append(set, m)
		}
	}
	if len(set) > 1 {
		var rest []string
		for _, m := range set[1:] {
			rest = append(rest, m.Name)
		}
		// Name the later mode as the offender so the error reads in the
		// order the flags appear on a typical command line.
		return fmt.Errorf("%s cannot be combined with %s", strings.Join(rest, " or "), set[0].Name)
	}
	if len(set) == 0 {
		return nil
	}
	var conflicts []string
	for _, o := range others {
		if o.Set {
			conflicts = append(conflicts, o.Name)
		}
	}
	if len(conflicts) > 0 {
		return fmt.Errorf("%s cannot be combined with %s", set[0].Name, strings.Join(conflicts, " or "))
	}
	return nil
}
