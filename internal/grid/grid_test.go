package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	g := New(4, 3)
	if g.Len() != 12 || g.SizeBytes() != 96 {
		t.Fatalf("Len=%d SizeBytes=%d", g.Len(), g.SizeBytes())
	}
	g.Set(2, 3, 7.5)
	if g.At(2, 3) != 7.5 {
		t.Errorf("At(2,3) = %v", g.At(2, 3))
	}
	if g.Idx(2, 3) != 11 {
		t.Errorf("Idx(2,3) = %d, want 11", g.Idx(2, 3))
	}
	if g.Data[11] != 7.5 {
		t.Error("row-major layout violated")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero width")
		}
	}()
	New(0, 3)
}

func TestCloneIsDeep(t *testing.T) {
	g := New(2, 2)
	g.Set(0, 0, 1)
	c := g.Clone()
	c.Set(0, 0, 2)
	if g.At(0, 0) != 1 {
		t.Error("clone shares storage")
	}
	if !g.Equal(g.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestEqualShapeAndValues(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	if !a.Equal(b) {
		t.Error("zero grids should be equal")
	}
	b.Set(1, 1, 0.1)
	if a.Equal(b) {
		t.Error("different values reported equal")
	}
	if a.Equal(New(4, 1)) {
		t.Error("different shapes reported equal")
	}
}

func TestEqualHandlesNaN(t *testing.T) {
	a, b := New(1, 1), New(1, 1)
	a.Set(0, 0, math.NaN())
	b.Set(0, 0, math.NaN())
	if !a.Equal(b) {
		t.Error("identical NaN bit patterns should compare equal")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	b.Set(0, 1, -3)
	b.Set(1, 0, 2)
	if got := a.MaxAbsDiff(b); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	g := New(3, 2)
	for i := range g.Data {
		g.Data[i] = float64(i) * 1.25
	}
	back, err := FromBytes(3, 2, g.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Error("Bytes/FromBytes round trip lost data")
	}
}

func TestFromBytesLengthCheck(t *testing.T) {
	if _, err := FromBytes(2, 2, make([]byte, 31)); err == nil {
		t.Error("expected error for wrong byte length")
	}
}

func TestFloatsBytesRoundTripProperty(t *testing.T) {
	prop := func(vals []float64) bool {
		back := FloatsFromBytes(FloatsToBytes(vals))
		if len(back) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatsFromBytesUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unaligned length")
		}
	}()
	FloatsFromBytes(make([]byte, 9))
}
