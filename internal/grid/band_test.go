package grid

import (
	"testing"
	"testing/quick"
)

func testGrid(w, h int) *Grid {
	g := New(w, h)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	return g
}

func TestBandOfCopiesWindow(t *testing.T) {
	g := testGrid(4, 4)
	b := BandOf(g, 4, 8, 0, 12) // own row 1, halo rows 0 and 2
	if b.OwnedLen() != 4 {
		t.Fatalf("OwnedLen = %d", b.OwnedLen())
	}
	for i := int64(0); i < 12; i++ {
		if b.At(i) != float64(i) {
			t.Errorf("At(%d) = %v", i, b.At(i))
		}
	}
}

func TestBandAtOutsidePanics(t *testing.T) {
	g := testGrid(4, 4)
	b := BandOf(g, 4, 8, 4, 8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic reading outside band")
		}
	}()
	b.At(3)
}

func TestBandContains(t *testing.T) {
	g := testGrid(4, 4)
	b := BandOf(g, 4, 8, 2, 10)
	if b.Contains(1) || !b.Contains(2) || !b.Contains(9) || b.Contains(10) {
		t.Error("Contains boundaries wrong")
	}
	if b.Hi() != 10 {
		t.Errorf("Hi = %d", b.Hi())
	}
}

func TestBandFillClipsToWindow(t *testing.T) {
	b := NewBand(4, 16, 4, 8, 2, 10)
	// Fragment overlapping the front edge: only elements 2..5 land.
	b.Fill(0, []float64{100, 101, 102, 103, 104, 105})
	if b.At(2) != 102 || b.At(5) != 105 {
		t.Errorf("front overlap: At(2)=%v At(5)=%v", b.At(2), b.At(5))
	}
	// Fragment fully outside: no effect, no panic.
	b.Fill(12, []float64{1, 2, 3})
	// Fragment overlapping the back edge.
	b.Fill(8, []float64{200, 201, 202, 203})
	if b.At(8) != 200 || b.At(9) != 201 {
		t.Errorf("back overlap: At(8)=%v At(9)=%v", b.At(8), b.At(9))
	}
}

func TestBandRowCol(t *testing.T) {
	b := NewBand(5, 25, 5, 10, 5, 10)
	r, c := b.RowCol(7)
	if r != 1 || c != 2 {
		t.Errorf("RowCol(7) = (%d,%d), want (1,2)", r, c)
	}
}

func TestNewBandValidation(t *testing.T) {
	cases := []struct {
		name                      string
		start, end, lo, hi, total int64
	}{
		{"lo>start", 4, 8, 5, 8, 16},
		{"hi<end", 4, 8, 4, 7, 16},
		{"start>end", 8, 4, 0, 16, 16},
		{"negative lo", 4, 8, -1, 8, 16},
		{"hi>total", 4, 8, 4, 17, 16},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			NewBand(4, c.total, c.start, c.end, c.lo, c.hi)
		}()
	}
}

func TestHaloRangeClamps(t *testing.T) {
	lo, hi := HaloRange(0, 10, 5, 100)
	if lo != 0 || hi != 15 {
		t.Errorf("HaloRange front = [%d,%d)", lo, hi)
	}
	lo, hi = HaloRange(95, 100, 5, 100)
	if lo != 90 || hi != 100 {
		t.Errorf("HaloRange back = [%d,%d)", lo, hi)
	}
	lo, hi = HaloRange(40, 60, 5, 100)
	if lo != 35 || hi != 65 {
		t.Errorf("HaloRange middle = [%d,%d)", lo, hi)
	}
}

// Property: assembling a band from arbitrary fragment tilings of the
// source grid reproduces exactly the window BandOf copies.
func TestBandAssemblyProperty(t *testing.T) {
	prop := func(cuts []uint8) bool {
		g := testGrid(8, 8)
		want := BandOf(g, 16, 48, 8, 56)
		got := NewBand(8, g.Len(), 16, 48, 8, 56)
		// Build a fragment tiling of [0, 64) from the cut points.
		bounds := []int64{0}
		for _, c := range cuts {
			p := int64(c) % g.Len()
			bounds = append(bounds, p)
		}
		bounds = append(bounds, g.Len())
		// Fill fragments in the given (arbitrary) order; overlaps are fine
		// because all fragments come from the same source.
		for i := 0; i+1 < len(bounds); i++ {
			lo, hi := bounds[i], bounds[i+1]
			if lo > hi {
				lo, hi = hi, lo
			}
			got.Fill(lo, g.Data[lo:hi])
		}
		// Every byte of the window must match.
		for i := want.Lo; i < want.Hi(); i++ {
			if got.At(i) != want.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
