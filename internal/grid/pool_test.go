package grid

import (
	"math"
	"testing"
)

func TestNewBandPooledMatchesNewBand(t *testing.T) {
	raw := FloatsToBytes([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	a := NewBand(4, 8, 2, 6, 0, 8)
	a.Fill(0, FloatsFromBytes(raw))
	b := NewBandPooled(4, 8, 2, 6, 0, 8)
	b.FillBytes(0, raw)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("pooled band data[%d] = %v, want %v", i, b.Data[i], a.Data[i])
		}
	}
	b.Release()
	// A recycled band must come back zeroed even after holding data.
	c := NewBandPooled(4, 8, 2, 6, 0, 8)
	for i, v := range c.Data {
		if v != 0 {
			t.Fatalf("recycled band data[%d] = %v, want 0", i, v)
		}
	}
	c.Release()
}

func TestNewBandPooledValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid band geometry")
		}
	}()
	NewBandPooled(4, 8, 2, 6, 3, 8) // lo > start
}

// TestBandExtractionAllocs guards the band-assembly hot path: once the
// pool is warm, building a band, decoding strip bytes into it, and
// releasing it must allocate (almost) nothing. The pre-pool path cost at
// least two allocations per band (Data slice + decoded []float64), both
// proportional to the halo size.
func TestBandExtractionAllocs(t *testing.T) {
	const w, h = 64, 64
	raw := make([]byte, w*h*ElemSize)
	for i := range raw {
		raw[i] = byte(i * 13)
	}
	extract := func() {
		b := NewBandPooled(w, w*h, 0, w*h, 0, w*h)
		b.FillBytes(0, raw)
		b.Release()
	}
	extract() // warm the pool
	allocs := testing.AllocsPerRun(100, extract)
	// sync.Pool may shed entries across a GC mid-run; tolerate a stray
	// refill but reject anything resembling per-call allocation.
	if allocs > 2 {
		t.Errorf("band extraction: %.1f allocs/op, want ≤ 2", allocs)
	}
}

func TestFloatsToBytesIntoReusesBuffer(t *testing.T) {
	vals := []float64{1.5, -2.25, math.Pi}
	buf := make([]byte, len(vals)*ElemSize)
	out := FloatsToBytesInto(buf, vals)
	if &out[0] != &buf[0] {
		t.Error("FloatsToBytesInto did not reuse the provided buffer")
	}
	back, err := FloatsFromBytesInto(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("round trip lost vals[%d]", i)
		}
	}
}

func TestFloatsFromBytesIntoUnalignedErrors(t *testing.T) {
	if _, err := FloatsFromBytesInto(nil, make([]byte, 9)); err == nil {
		t.Error("expected error for 9-byte input (not a multiple of ElemSize)")
	}
}

func TestFillBytesMatchesFill(t *testing.T) {
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = float64(i) * 1.75
	}
	raw := FloatsToBytes(vals)
	a := NewBand(8, 40, 8, 32, 0, 40)
	a.Fill(0, vals)
	b := NewBand(8, 40, 8, 32, 0, 40)
	b.FillBytes(0, raw)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("FillBytes data[%d] = %v, want %v", i, b.Data[i], a.Data[i])
		}
	}
	// Partial overlap: source range hangs off both ends of the window.
	c := NewBand(8, 40, 8, 32, 8, 32)
	c.FillBytes(0, raw) // head clipped
	if c.At(8) != vals[8] || c.At(31) != vals[31] {
		t.Error("clipped FillBytes wrote wrong values")
	}
	d := NewBand(8, 40, 8, 32, 8, 32)
	d.FillBytes(16, raw[:24*ElemSize]) // tail clipped at Hi
	if d.At(16) != vals[0] || d.At(31) != vals[15] {
		t.Error("tail-clipped FillBytes wrote wrong values")
	}
}
