package grid

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Band is the window of a raster's flat element space available to one
// worker: the contiguous range it must produce output for ([Start, End)),
// plus halo elements on both sides that its kernel's dependence pattern
// may read ([Lo, Hi) ⊇ [Start, End)). A storage server running an
// offloaded kernel assembles a Band from its local strips, its local
// replicas (DAS), or remote fetches (NAS); a compute node running the
// kernel client-side assembles it from normal reads.
type Band struct {
	Width     int   // raster width, for row/column boundary handling
	GlobalLen int64 // total elements in the raster
	Start     int64 // first owned element
	End       int64 // one past the last owned element
	Lo        int64 // first element present in Data
	Data      []float64
}

// NewBand allocates a band covering owned range [start, end) with data
// range [lo, hi).
func NewBand(width int, globalLen, start, end, lo, hi int64) *Band {
	validateBand(width, globalLen, start, end, lo, hi)
	return &Band{
		Width:     width,
		GlobalLen: globalLen,
		Start:     start,
		End:       end,
		Lo:        lo,
		Data:      make([]float64, hi-lo),
	}
}

func validateBand(width int, globalLen, start, end, lo, hi int64) {
	switch {
	case width <= 0:
		panic(fmt.Sprintf("grid: band width %d", width))
	case lo > start || hi < end || start > end || lo < 0 || hi > globalLen:
		panic(fmt.Sprintf("grid: invalid band [%d,%d) data [%d,%d) of %d", start, end, lo, hi, globalLen))
	}
}

// BandOf copies the window [lo, hi) out of a whole grid. It is the
// reference way to build the band a distributed worker would assemble.
func BandOf(g *Grid, start, end, lo, hi int64) *Band {
	b := NewBand(g.W, g.Len(), start, end, lo, hi)
	copy(b.Data, g.Data[lo:hi])
	return b
}

// Hi returns one past the last element present in Data.
func (b *Band) Hi() int64 { return b.Lo + int64(len(b.Data)) }

// Contains reports whether global element i is present in the band.
func (b *Band) Contains(i int64) bool { return i >= b.Lo && i < b.Hi() }

// At returns the value of global element i, which must be within the
// band's data range.
func (b *Band) At(i int64) float64 {
	if !b.Contains(i) {
		panic(fmt.Sprintf("grid: element %d outside band [%d,%d)", i, b.Lo, b.Hi()))
	}
	return b.Data[i-b.Lo]
}

// Fill copies src (global range [lo, lo+len(src))) into the band's data
// window; ranges outside the band are ignored. Workers call Fill once per
// local strip or fetched halo fragment.
func (b *Band) Fill(lo int64, src []float64) {
	hi := lo + int64(len(src))
	curLo, curHi := b.Lo, b.Hi()
	if hi <= curLo || lo >= curHi {
		return
	}
	from, to := lo, hi
	if from < curLo {
		from = curLo
	}
	if to > curHi {
		to = curHi
	}
	copy(b.Data[from-b.Lo:to-b.Lo], src[from-lo:to-lo])
}

// FillBytes decodes raw little-endian elements (global range
// [lo, lo+len(raw)/ElemSize)) directly into the band's data window,
// skipping the intermediate []float64 that Fill(lo, FloatsFromBytes(raw))
// would allocate. Ranges outside the band are ignored; len(raw) must be a
// multiple of ElemSize.
func (b *Band) FillBytes(lo int64, raw []byte) {
	if len(raw)%ElemSize != 0 {
		panic(fmt.Sprintf("grid: byte length %d not a multiple of element size %d", len(raw), ElemSize))
	}
	hi := lo + int64(len(raw))/ElemSize
	curLo, curHi := b.Lo, b.Hi()
	if hi <= curLo || lo >= curHi {
		return
	}
	from, to := lo, hi
	if from < curLo {
		from = curLo
	}
	if to > curHi {
		to = curHi
	}
	src := raw[(from-lo)*ElemSize:]
	dst := b.Data[from-b.Lo : to-b.Lo]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*ElemSize:]))
	}
}

// OwnedLen returns the number of elements the band must produce.
func (b *Band) OwnedLen() int64 { return b.End - b.Start }

// RowCol converts a flat element index into raster coordinates.
func (b *Band) RowCol(i int64) (row, col int) {
	return int(i / int64(b.Width)), int(i % int64(b.Width))
}

// HaloRange returns the data range [lo, hi) needed to process owned range
// [start, end) with a dependence reaching maxAbsOffset elements each way,
// clamped to the raster.
func HaloRange(start, end, maxAbsOffset, globalLen int64) (lo, hi int64) {
	lo = start - maxAbsOffset
	if lo < 0 {
		lo = 0
	}
	hi = end + maxAbsOffset
	if hi > globalLen {
		hi = globalLen
	}
	return lo, hi
}
