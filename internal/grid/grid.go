// Package grid provides the raster data model shared by the DAS kernels,
// file system, and workload generators.
//
// Following the paper (§III-B), a raster is stored in a file as a flat,
// row-major one-dimensional array of fixed-size elements, and kernel
// dependence is expressed as signed offsets in that flat element space
// (e.g. the 8-neighbor pattern of an image of width W is
// ±1, ±W, ±W±1). Grid is the in-memory whole raster; Band is the slice of
// flat element space one storage server sees: the range it owns plus the
// halo elements its kernel's dependence pattern reaches.
package grid

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ElemSize is the on-disk size in bytes of one raster element. All DAS
// rasters use float64 cells, matching the paper's uniform element size E.
const ElemSize = 8

// Grid is a dense row-major raster of float64 cells.
type Grid struct {
	W, H int
	Data []float64 // len == W*H, row-major
}

// New allocates a zero-filled W×H grid.
func New(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: dimensions must be positive, got %dx%d", w, h))
	}
	return &Grid{W: w, H: h, Data: make([]float64, w*h)}
}

// Len returns the number of elements.
func (g *Grid) Len() int64 { return int64(g.W) * int64(g.H) }

// SizeBytes returns the raster's on-disk size.
func (g *Grid) SizeBytes() int64 { return g.Len() * ElemSize }

// Idx returns the flat element index of cell (r, c).
func (g *Grid) Idx(r, c int) int64 { return int64(r)*int64(g.W) + int64(c) }

// At returns the value at (r, c).
func (g *Grid) At(r, c int) float64 { return g.Data[g.Idx(r, c)] }

// Set writes the value at (r, c).
func (g *Grid) Set(r, c int, v float64) { g.Data[g.Idx(r, c)] = v }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := New(g.W, g.H)
	copy(out.Data, g.Data)
	return out
}

// Equal reports whether two grids have identical shape and bit-identical
// cells (NaNs compare by bit pattern, so a cloned grid is always Equal).
func (g *Grid) Equal(o *Grid) bool {
	if g.W != o.W || g.H != o.H {
		return false
	}
	for i := range g.Data {
		if math.Float64bits(g.Data[i]) != math.Float64bits(o.Data[i]) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute cell difference between two
// grids of the same shape.
func (g *Grid) MaxAbsDiff(o *Grid) float64 {
	if g.W != o.W || g.H != o.H {
		panic("grid: MaxAbsDiff on mismatched shapes")
	}
	var maxd float64
	for i := range g.Data {
		if d := math.Abs(g.Data[i] - o.Data[i]); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Bytes encodes the raster into its on-disk little-endian representation.
func (g *Grid) Bytes() []byte {
	return FloatsToBytes(g.Data)
}

// FromBytes decodes a W×H raster from its on-disk representation.
func FromBytes(w, h int, b []byte) (*Grid, error) {
	want := int64(w) * int64(h) * ElemSize
	if int64(len(b)) != want {
		return nil, fmt.Errorf("grid: %dx%d raster needs %d bytes, got %d", w, h, want, len(b))
	}
	g := New(w, h)
	copy(g.Data, FloatsFromBytes(b))
	return g, nil
}

// FloatsToBytes encodes elements little-endian.
func FloatsToBytes(vals []float64) []byte {
	return FloatsToBytesInto(nil, vals)
}

// FloatsToBytesInto encodes elements little-endian into dst, reusing its
// backing array when the capacity suffices (allocating otherwise), and
// returns the encoded slice. Hot paths pair it with a pooled buffer to
// avoid a fresh allocation per encode.
func FloatsToBytesInto(dst []byte, vals []float64) []byte {
	n := len(vals) * ElemSize
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]byte, n)
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*ElemSize:], math.Float64bits(v))
	}
	return dst
}

// FloatsFromBytes decodes little-endian elements. An input whose length is
// not a multiple of ElemSize has no valid decoding; rather than silently
// truncating the tail, FloatsFromBytes panics on such input (use
// FloatsFromBytesInto for an error-returning variant).
func FloatsFromBytes(b []byte) []float64 {
	out, err := FloatsFromBytesInto(nil, b)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// FloatsFromBytesInto decodes little-endian elements into dst, reusing its
// backing array when the capacity suffices, and returns the decoded slice.
// Unlike FloatsFromBytes it reports an unaligned input length as an error
// instead of panicking.
func FloatsFromBytesInto(dst []float64, b []byte) ([]float64, error) {
	if len(b)%ElemSize != 0 {
		return nil, fmt.Errorf("grid: byte length %d not a multiple of element size %d", len(b), ElemSize)
	}
	n := len(b) / ElemSize
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*ElemSize:]))
	}
	return dst, nil
}
