package grid

import (
	"sync"

	"github.com/hpcio/das/internal/bufpool"
)

// Buffer pools for the strip/halo hot paths. Every scheme run assembles
// bands, decodes strip bytes, and encodes output bytes over and over with
// identical sizes; recycling those buffers removes the dominant allocation
// sources from the simulator's inner loop (the GB-scale garbage behind the
// Fig. 10-14 regeneration cost).
//
// Pooled float buffers are returned zeroed, so a pooled band behaves
// exactly like a freshly allocated one: unfilled gaps read as 0, keeping
// outputs byte-identical to the unpooled reference.

var (
	floatPool bufpool.Pool[float64]
	bandPool  = sync.Pool{New: func() any { return new(Band) }}
)

// GetFloats returns a zeroed float slice of length n from the pool,
// allocating when the pool is empty or too small. Return it with PutFloats
// once it is no longer referenced.
func GetFloats(n int) []float64 {
	s := floatPool.Get(n)
	clear(s)
	//das:transfer -- this wrapper is the pool's hand-out point; the caller owns the slice
	return s
}

// PutFloats recycles a slice obtained from GetFloats (or anywhere else).
// The caller must not use the slice afterwards.
func PutFloats(s []float64) {
	floatPool.Put(s)
}

// NewBandPooled is NewBand backed by the pool: the Band struct and its
// data buffer are recycled via Release. The data window starts zeroed,
// exactly like NewBand's.
func NewBandPooled(width int, globalLen, start, end, lo, hi int64) *Band {
	validateBand(width, globalLen, start, end, lo, hi)
	b := bandPool.Get().(*Band)
	n := hi - lo
	if int64(cap(b.Data)) >= n {
		b.Data = b.Data[:n]
		clear(b.Data)
	} else {
		floatPool.Put(b.Data)
		//das:transfer -- the band owns its data buffer; Release recycles band and buffer together
		b.Data = GetFloats(int(n))
	}
	b.Width = width
	b.GlobalLen = globalLen
	b.Start = start
	b.End = end
	b.Lo = lo
	return b
}

// Release returns a band obtained from NewBandPooled to the pool. The
// caller must not use the band (or its Data) afterwards. Releasing a band
// built by NewBand is also safe: its buffer simply joins the pool.
func (b *Band) Release() {
	bandPool.Put(b)
}
