package workload

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s — the file-popularity skew of YCSB-style multi-tenant
// workloads (ScaleStore's evaluation shape). The sampler precomputes the
// cumulative distribution once and answers each draw with one RNG draw
// plus a binary search, so a run over thousands of tenants costs no
// per-sample allocation.
//
// All randomness flows through the explicitly seeded splitmix64 RNG and
// the CDF is a fixed float64 array, so two samplers built with equal
// (n, s) over equally seeded RNGs produce identical rank sequences on
// every platform — the workload replay contract.
type Zipf struct {
	rng *RNG
	cdf []float64 // cdf[r] = P(rank <= r), cdf[n-1] == 1
}

// NewZipf builds a sampler over n ranks with skew s > 0 drawing from rng.
// Typical skews: 0.99 (YCSB default) to 1.2 (heavily skewed).
func NewZipf(rng *RNG, n int, s float64) (*Zipf, error) {
	if rng == nil {
		return nil, fmt.Errorf("workload: Zipf needs an RNG")
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: Zipf over %d ranks", n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: Zipf skew %v must be a positive finite value", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	cdf[n-1] = 1 // exact, against rounding drift
	return &Zipf{rng: rng, cdf: cdf}, nil
}

// Ranks returns the number of ranks the sampler draws over.
func (z *Zipf) Ranks() int { return len(z.cdf) }

// Sample draws one rank in [0, Ranks()).
func (z *Zipf) Sample() int {
	u := z.rng.Float()
	return sort.SearchFloat64s(z.cdf, u)
}

// Weight returns the probability mass of one rank — the analytical
// frequency tests and capacity planning compare against.
func (z *Zipf) Weight(rank int) float64 {
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
