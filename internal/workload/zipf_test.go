package workload

import (
	"reflect"
	"testing"
)

// TestZipfReplayDeterminism draws a long sequence twice from equally
// seeded samplers and requires the exact rank-frequency histograms (and
// the sequences themselves) to match — the replay contract the
// multi-tenant engine builds on.
func TestZipfReplayDeterminism(t *testing.T) {
	const n, draws = 97, 20000
	run := func() ([]int, []int64) {
		z, err := NewZipf(NewRNG(12345), n, 1.1)
		if err != nil {
			t.Fatal(err)
		}
		seq := make([]int, draws)
		freq := make([]int64, n)
		for i := range seq {
			r := z.Sample()
			if r < 0 || r >= n {
				t.Fatalf("sample %d out of range [0,%d)", r, n)
			}
			seq[i] = r
			freq[r]++
		}
		return seq, freq
	}
	seq1, freq1 := run()
	seq2, freq2 := run()
	if !reflect.DeepEqual(freq1, freq2) {
		t.Fatalf("rank-frequency histograms diverged across replays:\n%v\n%v", freq1, freq2)
	}
	if !reflect.DeepEqual(seq1, seq2) {
		t.Fatal("sampled sequences diverged across replays")
	}
	// Sanity: the head rank must dominate the tail rank by roughly n^s.
	if freq1[0] <= freq1[n-1]*10 {
		t.Fatalf("rank 0 drawn %d times vs rank %d's %d — not Zipf-shaped", freq1[0], n-1, freq1[n-1])
	}
}

// TestZipfSkewMonotonicity checks that raising the skew parameter
// concentrates more mass on the top rank, both analytically (Weight) and
// empirically (sampled head share).
func TestZipfSkewMonotonicity(t *testing.T) {
	const n, draws = 64, 10000
	prevWeight, prevHead := 0.0, int64(-1)
	for _, s := range []float64{0.5, 0.8, 1.0, 1.2, 1.5} {
		z, err := NewZipf(NewRNG(7), n, s)
		if err != nil {
			t.Fatal(err)
		}
		if w := z.Weight(0); w <= prevWeight {
			t.Errorf("skew %v: rank-0 weight %v not above previous %v", s, w, prevWeight)
		} else {
			prevWeight = w
		}
		var head int64
		for i := 0; i < draws; i++ {
			if z.Sample() == 0 {
				head++
			}
		}
		if head <= prevHead {
			t.Errorf("skew %v: rank-0 drawn %d times, not above previous %d", s, head, prevHead)
		}
		prevHead = head
	}
}

// TestZipfPinnedSequence is the regression pin: the first draws for a
// fixed (seed, n, s) are part of the replay contract — any change to the
// RNG, the CDF construction, or the search invalidates every committed
// BENCH_tenants artifact and must be deliberate.
func TestZipfPinnedSequence(t *testing.T) {
	z, err := NewZipf(NewRNG(42), 16, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, 24)
	for i := range got {
		got[i] = z.Sample()
	}
	want := []int{5, 0, 0, 1, 0, 9, 0, 7, 1, 3, 0, 2, 2, 2, 4, 0, 0, 2, 0, 4, 13, 0, 3, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned Zipf sequence changed:\ngot  %v\nwant %v", got, want)
	}
}

// TestZipfRejectsBadInputs covers the constructor's validation.
func TestZipfRejectsBadInputs(t *testing.T) {
	if _, err := NewZipf(nil, 4, 1.0); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := NewZipf(NewRNG(1), 0, 1.0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewZipf(NewRNG(1), 4, 0); err == nil {
		t.Error("zero skew accepted")
	}
	if _, err := NewZipf(NewRNG(1), 4, -1); err == nil {
		t.Error("negative skew accepted")
	}
}

// TestRNGPinnedStream pins the exported splitmix64 stream itself: the
// generators and the Zipf sampler both ride on it.
func TestRNGPinnedStream(t *testing.T) {
	r := NewRNG(1)
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
	f := NewRNG(99).Float()
	if f < 0 || f >= 1 {
		t.Fatalf("Float() = %v outside [0,1)", f)
	}
	if got := NewRNG(3).Intn(10); got < 0 || got >= 10 {
		t.Fatalf("Intn(10) = %d", got)
	}
}
