package workload

import (
	"math"
	"testing"
)

func TestTerrainDeterministic(t *testing.T) {
	a := Terrain(64, 48, 7)
	b := Terrain(64, 48, 7)
	if !a.Equal(b) {
		t.Error("same seed produced different terrain")
	}
	c := Terrain(64, 48, 8)
	if a.Equal(c) {
		t.Error("different seeds produced identical terrain")
	}
}

func TestTerrainIsFiniteAndVaried(t *testing.T) {
	g := Terrain(128, 96, 42)
	seen := make(map[float64]bool)
	for _, v := range g.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("terrain contains non-finite values")
		}
		seen[v] = true
	}
	if len(seen) < len(g.Data)/10 {
		t.Errorf("terrain too repetitive: %d distinct values of %d", len(seen), len(g.Data))
	}
}

func TestTerrainHasRegionalSlope(t *testing.T) {
	g := Terrain(256, 256, 3)
	// Averaged over many cells the 0.05·(r+c) slope dominates noise:
	// the far corner sits higher than the origin corner.
	var nearSum, farSum float64
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			nearSum += g.At(i, j)
			farSum += g.At(255-i, 255-j)
		}
	}
	if farSum <= nearSum {
		t.Error("terrain lacks the draining slope")
	}
}

func TestImageSpeckleFraction(t *testing.T) {
	g := Image(256, 256, 9, 0.1)
	speckles := 0
	for _, v := range g.Data {
		if v == 0 || v == 255 {
			speckles++
		}
	}
	frac := float64(speckles) / float64(g.Len())
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("speckle fraction %v, want ≈0.1", frac)
	}
}

func TestImageNoSpeckleIsSmooth(t *testing.T) {
	g := Image(64, 64, 1, 0)
	for r := 0; r < 64; r++ {
		for c := 1; c < 64; c++ {
			if math.Abs(g.At(r, c)-g.At(r, c-1)) > 20 {
				t.Fatalf("clean image jumps at (%d,%d)", r, c)
			}
		}
	}
}

func TestRamp(t *testing.T) {
	g := Ramp(4, 2)
	if g.At(0, 0) != 0 || g.At(1, 3) != 7 {
		t.Error("ramp values wrong")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(123)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float()
		if v < 0 || v >= 1 {
			t.Fatalf("float out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Errorf("mean %v, want ≈0.5", mean)
	}
}
