// Package workload generates the synthetic rasters the reproduction feeds
// the analysis kernels: terrain-like digital elevation models for the GIS
// kernels (flow-routing, flow-accumulation) and speckled intensity images
// for the filtering kernels. The paper used real 24–60 GB datasets on a
// Lustre testbed; these generators produce deterministic stand-ins with
// the same access behaviour — every byte is read, every byte is produced —
// which is all the schemes' costs depend on.
package workload

import (
	"math"

	"github.com/hpcio/das/internal/grid"
)

// RNG is a splitmix64 generator: tiny, fast, and identical on every
// platform, keeping workloads reproducible without math/rand's global
// state. It is the package's single deterministic source — the raster
// generators, the Zipf file-popularity sampler, and the multi-tenant
// engine's hot-set rotation all draw from it, always with an explicit
// seed threaded from the caller.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with the given state.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 uniform bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n); n must be positive. The modulo
// bias over a 64-bit draw is negligible for the small ranges (file
// counts, strip counts) the workloads use.
func (r *RNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("workload: Intn on non-positive n")
	}
	return int64(r.Next() % uint64(n))
}

// Float returns a uniform value in [0, 1).
func (r *RNG) Float() float64 { return float64(r.Next()>>11) / float64(1<<53) }

// Terrain produces a w×h digital elevation model: several octaves of
// value noise (bilinear interpolation of random lattices) over a gentle
// regional slope, the kind of surface flow-routing is meant for.
func Terrain(w, h int, seed uint64) *grid.Grid {
	g := grid.New(w, h)
	octaves := []struct {
		cell float64
		amp  float64
	}{
		{cell: 64, amp: 100},
		{cell: 16, amp: 25},
		{cell: 4, amp: 6},
	}
	lattices := make([]*lattice, len(octaves))
	for i, o := range octaves {
		lattices[i] = newLattice(int(float64(w)/o.cell)+2, int(float64(h)/o.cell)+2, seed+uint64(i)*7919)
	}
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			// Regional slope draining toward the origin corner.
			v := 0.05 * float64(r+c)
			for i, o := range octaves {
				v += o.amp * lattices[i].sample(float64(c)/o.cell, float64(r)/o.cell)
			}
			g.Set(r, c, v)
		}
	}
	return g
}

// lattice is a random value lattice sampled with bilinear interpolation.
type lattice struct {
	w, h int
	v    []float64
}

func newLattice(w, h int, seed uint64) *lattice {
	r := NewRNG(seed)
	l := &lattice{w: w, h: h, v: make([]float64, w*h)}
	for i := range l.v {
		l.v[i] = r.Float()
	}
	return l
}

func (l *lattice) at(x, y int) float64 {
	if x >= l.w {
		x = l.w - 1
	}
	if y >= l.h {
		y = l.h - 1
	}
	return l.v[y*l.w+x]
}

func (l *lattice) sample(x, y float64) float64 {
	x0, y0 := int(x), int(y)
	fx, fy := x-float64(x0), y-float64(y0)
	// Smoothstep the fractions for continuous derivatives.
	fx = fx * fx * (3 - 2*fx)
	fy = fy * fy * (3 - 2*fy)
	top := l.at(x0, y0)*(1-fx) + l.at(x0+1, y0)*fx
	bot := l.at(x0, y0+1)*(1-fx) + l.at(x0+1, y0+1)*fx
	return top*(1-fy) + bot*fy
}

// Image produces a w×h intensity raster: a smooth sinusoidal field with
// salt-and-pepper speckle on speckleFrac of the pixels — the input the
// median and Gaussian filters are evaluated on.
func Image(w, h int, seed uint64, speckleFrac float64) *grid.Grid {
	g := grid.New(w, h)
	r := NewRNG(seed)
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			v := 128 + 80*math.Sin(float64(col)/23)*math.Cos(float64(row)/17)
			if r.Float() < speckleFrac {
				if r.Float() < 0.5 {
					v = 0
				} else {
					v = 255
				}
			}
			g.Set(row, col, v)
		}
	}
	return g
}

// Ramp produces a deterministic, structureless raster (value = flat
// index); useful in tests where the exact values matter more than realism.
func Ramp(w, h int) *grid.Grid {
	g := grid.New(w, h)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	return g
}
