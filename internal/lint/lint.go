// Package lint implements daslint, a vet-style analyzer suite that turns
// the simulator's determinism and pooling contracts from doc comments
// into build-time errors.
//
// The whole reproduction rests on the DES being bit-reproducible: scheme
// comparisons, fault-injection replays, and restripe crash demos are only
// evidence if the same seed yields the same event order. Four analyzers
// enforce the invariants that keep it that way:
//
//   - simclock: simulated packages must use the DES clock (sim.Time,
//     Proc.Sleep), never the wall clock.
//   - detrand: randomness must flow through a seeded *rand.Rand threaded
//     from the plan/engine, and map iteration must not feed the event
//     order.
//   - goroutines: the scheduler owns concurrency; go statements are only
//     legal at the blessed sites.
//   - bufpool: a pooled buffer must reach its Put on every return path,
//     or escape through an explicitly annotated transfer.
//
// Two module-wide analyzers follow those contracts across call chains,
// which the per-function checks cannot:
//
//   - transfer: every //das:transfer annotation is a checked obligation —
//     the annotated escape is followed through the module's ownership
//     flow graph (returns, parameters, struct fields, message payloads)
//     and reported when no path in any new owner ever releases the
//     buffer.
//   - replies: a handler that receives a simnet request must send exactly
//     one reply on every path; a dropped reply parks the caller forever
//     in simulated time, a deadlock no race detector sees.
//
// A final analyzer, directive, validates the //das:allow and
// //das:transfer suppression/transfer comments the others honor, and (in
// module runs) reports stale directives whose guarded construct no longer
// needs them.
//
// The package deliberately mirrors the shapes of
// golang.org/x/tools/go/analysis (Analyzer, Pass, analysistest-style
// golden files under testdata) so it can be ported to the real framework
// mechanically, but it is built on the standard library alone: the build
// environment for this repo is offline, so x/tools cannot be a
// dependency. cmd/daslint is the driver; it runs standalone over go list
// packages and speaks the `go vet -vettool` protocol.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this repository; analyzer
// scoping rules (simulated packages, allowlisted files) are expressed
// against it.
const ModulePath = "github.com/hpcio/das"

// An Analyzer describes one invariant check. The first line of Doc is the
// one-line summary printed by `daslint -list`.
//
// Run is the per-package form: it sees one type-checked package at a
// time, which is all the `go vet -vettool` protocol can provide (vet
// hands the driver one compilation unit, without dependency source).
// RunModule is the interprocedural form: it runs once over every package
// of a load, so it can follow ownership hand-offs and reply obligations
// across call chains. An analyzer defines one or the other; Check skips
// module analyzers and CheckModule runs both kinds.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Summary returns the first line of the analyzer's documentation.
func (a *Analyzer) Summary() string {
	if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
		return a.Doc[:i]
	}
	return a.Doc
}

// All lists every analyzer in the suite, in the order they run. Transfer
// and Replies are module analyzers: per-package drivers (the vet protocol)
// skip them.
func All() []*Analyzer {
	return []*Analyzer{Simclock, Detrand, Goroutines, Bufpool, Transfer, Replies, Directive}
}

// A Pass carries one parsed, type-checked package into an analyzer's Run
// function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	directives []*directive
	report     func(Diagnostic)
}

// Reportf records a diagnostic at pos. Suppression (//das:allow) is
// applied by the driver, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Package is the loaded form an analyzer pass runs over. Types and Info
// must be fully populated; the analyzers lean on type information to tell
// e.g. sim.Mailbox.Put from bufpool.Pool.Put.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check runs the given analyzers over pkg and returns the surviving
// diagnostics sorted by position: suppression directives have been
// applied, and any malformed directives appear as findings of the
// directive analyzer. Module analyzers (Run == nil) are skipped; only
// CheckModule can run them, because they need every package of the load
// at once.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := collectDirectives(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			directives: dirs,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Types.Path(), a.Name, err)
		}
	}
	diags = filterSuppressed(pkg.Fset, dirs, diags)
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// A ModulePass carries a whole load — every package of the module — into
// a module analyzer's RunModule. The packages share one FileSet, which is
// what lets cross-package positions and directives line up.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	mod        *moduleIndex
	directives []*directive
	report     func(Diagnostic)
}

// Reportf records a diagnostic at pos, as Pass.Reportf does.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// transferAt reports whether a well-formed transfer directive covers pos,
// and marks the directive consulted (the stale-directive check keys on
// it).
func (p *ModulePass) transferAt(pos token.Pos) bool {
	return transferCovering(p.Fset, p.directives, pos) != nil
}

// CheckModule runs the suite over a whole load: per-package analyzers
// over each package, module analyzers once across all of them. On top of
// Check's directive handling it reports stale directives — a //das:allow
// that suppressed nothing, or a //das:transfer covering no escape the
// transfer analyzer can resolve — so suppressions cannot outlive the code
// they excused.
func CheckModule(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	var allDirs []*directive
	perPkg := make(map[*Package][]*directive, len(pkgs))
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg.Fset, pkg.Files)
		perPkg[pkg] = dirs
		allDirs = append(allDirs, dirs...)
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				directives: perPkg[pkg],
				report:     report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Types.Path(), a.Name, err)
			}
		}
	}

	mod := &moduleIndex{pkgs: pkgs}
	ranModule := make(map[string]bool)
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer:   a,
			Fset:       fset,
			Pkgs:       pkgs,
			mod:        mod,
			directives: allDirs,
			report:     report,
		}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("module analyzer %s: %w", a.Name, err)
		}
		ranModule[a.Name] = true
	}

	diags = filterSuppressed(fset, allDirs, diags)
	if hasAnalyzer(analyzers, "directive") {
		diags = append(diags, staleDirectives(allDirs, analyzers, ranModule["transfer"])...)
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

func hasAnalyzer(analyzers []*Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// isTestFile reports whether the file at pos is a _test.go file. All
// analyzers exempt tests: tests run outside the DES and routinely use
// wall clocks, goroutines, and throwaway randomness.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// simExempt lists internal packages outside the simulated world: trace
// writes wall-clock-stamped artifacts to real files, and lint itself
// shells out to the go command. Extend this list (not ad-hoc //das:allow
// comments) when a whole package legitimately lives off the DES clock.
var simExempt = []string{
	ModulePath + "/internal/trace",
	ModulePath + "/internal/lint",
}

// simulatedPkg reports whether path is a simulated package: everything
// under internal/ except the simExempt subtrees. Commands and the root
// package drive simulations but are themselves real programs.
func simulatedPkg(path string) bool {
	if !strings.HasPrefix(path, ModulePath+"/internal/") {
		return false
	}
	for _, ex := range simExempt {
		if path == ex || strings.HasPrefix(path, ex+"/") {
			return false
		}
	}
	return true
}

// calleeFunc resolves the function or method called by call, or nil when
// the callee is not a simple named function (conversions, indirect calls,
// builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgFuncIs reports whether fn is the package-level function pkgpath.name.
func pkgFuncIs(fn *types.Func, pkgpath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgpath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodIs reports whether fn is the method pkgpath.typename.name
// (receiver pointerness and type arguments ignored).
func methodIs(fn *types.Func, pkgpath, typename, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typename && obj.Pkg() != nil && obj.Pkg().Path() == pkgpath
}
