// Package linttest is an analysistest-style golden harness for the
// daslint analyzers, built on the standard library (the build environment
// is offline, so x/tools' analysistest is not available).
//
// A test package lives in internal/lint/testdata/src/<dir>; every .go
// file in the directory is parsed and type-checked as one package whose
// import path the test chooses — analyzer scoping rules (simulated
// packages, file allowlists) key on that path, so testdata can pose as
// any package in the module. Expected findings are `// want "regexp"`
// comments on the offending line; several quoted regexps may follow one
// want. Run fails the test for any unmatched want or unexpected
// diagnostic.
//
// Imports resolve through go/importer's source importer, so testdata may
// import both the standard library and real packages of this module
// (internal/sim, internal/bufpool, ...) to exercise type-based matching
// against the genuine article.
//
// Multi-package fixtures for the module-wide analyzers live under
// internal/lint/testdata/mod/<mod>/<subdir>; RunModule type-checks each
// subdirectory as its own package and runs the CheckModule pipeline over
// the lot, so transfer chains and reply obligations can cross package
// boundaries exactly as they do in the real module.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/hpcio/das/internal/lint"
)

// The fileset and source importer are shared by every Run in the test
// process: the importer memoizes type-checked packages, so the cost of
// importing internal/sim from source is paid once.
var (
	sharedMu   sync.Mutex
	sharedFset = token.NewFileSet()
	sharedImp  types.Importer
)

func sourceImporter() types.Importer {
	if sharedImp == nil {
		sharedImp = importer.ForCompiler(sharedFset, "source", nil)
	}
	return sharedImp
}

// Run type-checks testdata/src/<dir> as a package with import path
// pkgpath, runs exactly the given analyzer over it through the same
// Check pipeline the daslint driver uses (suppression directives
// included), and compares diagnostics against the // want comments.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgpath string) {
	t.Helper()
	fset, files, diags := check(t, a, dir, pkgpath)
	wants := collectWants(t, fset, files)
	matchDiagnostics(t, fset, wants, diags)
}

// Diagnostics runs the analyzer over testdata/src/<dir> as pkgpath and
// returns the raw diagnostics, ignoring want comments — for tests that
// re-check a fixture under a different import path, where the annotated
// expectations no longer apply.
func Diagnostics(t *testing.T, a *lint.Analyzer, dir, pkgpath string) []lint.Diagnostic {
	t.Helper()
	_, _, diags := check(t, a, dir, pkgpath)
	return diags
}

// RunModule type-checks a multi-package fixture module and runs the full
// CheckModule pipeline — per-package analyzers, module analyzers, and the
// stale-directive check — over all of it, comparing against the // want
// comments of every file. The fixture lives under testdata/mod/<mod>;
// pkgs lists [subdir, importpath] pairs in dependency order, so later
// packages may import earlier ones by their declared import paths (other
// imports fall through to the source importer, as in Run). This is the
// harness for the interprocedural analyzers, whose findings only exist
// when a hand-off or reply obligation crosses package boundaries.
func RunModule(t *testing.T, analyzers []*lint.Analyzer, mod string, pkgs [][2]string) {
	t.Helper()
	sharedMu.Lock()
	defer sharedMu.Unlock()

	root := filepath.Join(testdataDir(t), "mod", mod)
	local := make(map[string]*types.Package)
	imp := &layeredImporter{local: local}
	var lpkgs []*lint.Package
	var allFiles []*ast.File
	for _, pd := range pkgs {
		subdir, pkgpath := pd[0], pd[1]
		dir := filepath.Join(root, subdir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(sharedFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			t.Fatalf("no Go files in %s", dir)
		}
		info := lint.NewTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkgpath, sharedFset, files, info)
		if err != nil {
			t.Fatalf("type-checking %s/%s: %v", mod, subdir, err)
		}
		local[pkgpath] = tpkg
		lpkgs = append(lpkgs, &lint.Package{Fset: sharedFset, Files: files, Types: tpkg, Info: info})
		allFiles = append(allFiles, files...)
	}
	diags, err := lint.CheckModule(lpkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, sharedFset, allFiles)
	matchDiagnostics(t, sharedFset, wants, diags)
}

// layeredImporter resolves the fixture module's own packages by their
// declared import paths and everything else through the shared source
// importer.
type layeredImporter struct {
	local map[string]*types.Package
}

func (l *layeredImporter) Import(path string) (*types.Package, error) {
	if p, ok := l.local[path]; ok {
		return p, nil
	}
	return sourceImporter().Import(path)
}

func check(t *testing.T, a *lint.Analyzer, dir, pkgpath string) (*token.FileSet, []*ast.File, []lint.Diagnostic) {
	t.Helper()
	sharedMu.Lock()
	defer sharedMu.Unlock()

	root := filepath.Join(testdataDir(t), "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(sharedFset, filepath.Join(root, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", root)
	}

	info := lint.NewTypesInfo()
	conf := types.Config{Importer: sourceImporter()}
	tpkg, err := conf.Check(pkgpath, sharedFset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}
	pkg := &lint.Package{Fset: sharedFset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.Check(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return sharedFset, files, diags
}

// testdataDir locates internal/lint/testdata relative to this source
// file, so the harness works regardless of the test's working directory.
func testdataDir(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate linttest source file")
	}
	return filepath.Join(filepath.Dir(thisFile), "..", "testdata")
}

// A want is one expected-diagnostic regexp anchored to a file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`(?:\x60([^\x60]*)\x60)|("(?:[^"\\]|\\.)*")`)

// collectWants parses `// want "re" "re"...` comments. Both quoted and
// backquoted regexps are accepted.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment (`// want "..."`) or
				// trail inside one, which is how a line that is itself a
				// comment — a das: directive — carries an expectation.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := c.Text[idx+len("// want"):]
				found := false
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if m[2] != "" {
						unq, err := strconv.Unquote(m[2])
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, m[2], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					found = true
				}
				if !found {
					t.Fatalf("%s: want comment with no patterns", pos)
				}
			}
		}
	}
	return wants
}

func matchDiagnostics(t *testing.T, fset *token.FileSet, wants []*want, diags []lint.Diagnostic) {
	t.Helper()
	var unexpected []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("%s: [%s] %s", pos, d.Analyzer, d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic:\n  %s", u)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}
}
