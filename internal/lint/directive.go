package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"strings"
	"sync"
)

// Suppression and transfer directives.
//
//	//das:allow <analyzer>[,<analyzer>...] -- <reason>
//	//das:transfer -- <reason>
//
// An allow directive silences the named analyzers' findings on the line
// it shares with code, or — when it stands on a line of its own — on the
// line immediately below it. A transfer directive is not a suppression:
// it is an assertion the bufpool analyzer checks, declaring that the
// pooled buffer acquired or escaping on its line changes owner (the new
// owner becomes responsible for the Put). Both require a reason after
// " -- "; the directive analyzer rejects reason-less or unknown-analyzer
// directives, so every exemption in the tree is explained.

const (
	allowPrefix    = "//das:allow"
	transferPrefix = "//das:transfer"
)

type directive struct {
	kind      string   // "allow" or "transfer"
	analyzers []string // for allow: analyzer names it silences
	reason    string
	pos       token.Pos
	file      string
	line      int  // line the directive occupies
	ownLine   bool // true when nothing but the comment is on its line
	bad       string

	// Usage marks for the stale-directive check, set during a module run:
	// suppressed counts findings this allow directive silenced; resolved
	// is set when the transfer analyzer located the escape this transfer
	// directive covers.
	suppressed int
	resolved   bool
}

// collectDirectives scans every comment in files for das: directives.
// Malformed ones are returned with bad set; the directive analyzer
// reports them.
func collectDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(fset, c)
				if ok {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func parseDirective(fset *token.FileSet, c *ast.Comment) (*directive, bool) {
	text := c.Text
	var kind string
	switch {
	case strings.HasPrefix(text, allowPrefix):
		kind = "allow"
		text = text[len(allowPrefix):]
	case strings.HasPrefix(text, transferPrefix):
		kind = "transfer"
		text = text[len(transferPrefix):]
	default:
		return nil, false
	}
	pos := fset.Position(c.Pos())
	d := &directive{
		kind:    kind,
		pos:     c.Pos(),
		file:    pos.Filename,
		line:    pos.Line,
		ownLine: startsLine(pos),
	}
	body, reason, found := strings.Cut(text, "--")
	if !found || strings.TrimSpace(reason) == "" {
		d.bad = "missing ' -- reason'"
		return d, true
	}
	d.reason = strings.TrimSpace(reason)
	body = strings.TrimSpace(body)
	if kind == "transfer" {
		if body != "" {
			d.bad = "transfer directive takes no arguments before ' -- '"
		}
		return d, true
	}
	if body == "" {
		d.bad = "names no analyzer"
		return d, true
	}
	for _, name := range strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' }) {
		if !knownAnalyzer(name) {
			d.bad = "unknown analyzer " + name
			return d, true
		}
		d.analyzers = append(d.analyzers, name)
	}
	return d, true
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// startsLine reports whether the comment at p is the first non-blank text
// on its source line (a standalone directive, as opposed to one trailing
// code). Reading the file is fine here: the parser just did, and the
// result is cached per file.
func startsLine(p token.Position) bool {
	lines, err := sourceLines(p.Filename)
	if err != nil || p.Line-1 >= len(lines) || p.Column < 1 {
		return false
	}
	line := lines[p.Line-1]
	if p.Column-1 > len(line) {
		return false
	}
	return strings.TrimSpace(line[:p.Column-1]) == ""
}

var sourceLineCache = struct {
	sync.Mutex
	m map[string][]string
}{m: make(map[string][]string)}

func sourceLines(filename string) ([]string, error) {
	sourceLineCache.Lock()
	defer sourceLineCache.Unlock()
	if lines, ok := sourceLineCache.m[filename]; ok {
		return lines, nil
	}
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	sourceLineCache.m[filename] = lines
	return lines, nil
}

// filterSuppressed drops diagnostics covered by a well-formed allow
// directive: same file, and either the directive shares the diagnostic's
// line or stands alone on the line directly above it. Each suppression is
// counted on the directive, so a module run can tell which allows earn
// their keep.
func filterSuppressed(fset *token.FileSet, dirs []*directive, diags []Diagnostic) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if dir.kind != "allow" || dir.bad != "" || dir.file != p.Filename {
				continue
			}
			if dir.line != p.Line && !(dir.ownLine && dir.line == p.Line-1) {
				continue
			}
			for _, name := range dir.analyzers {
				if name == d.Analyzer {
					suppressed = true
					dir.suppressed++
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// covers reports whether the directive applies to the source position p:
// same file, and either the same line or standing alone on the line
// directly above it.
func (dir *directive) covers(p token.Position) bool {
	if dir.file != p.Filename {
		return false
	}
	return dir.line == p.Line || (dir.ownLine && dir.line == p.Line-1)
}

// transferCovering returns the well-formed transfer directive covering
// pos, or nil.
func transferCovering(fset *token.FileSet, dirs []*directive, pos token.Pos) *directive {
	pp := fset.Position(pos)
	for _, dir := range dirs {
		if dir.kind == "transfer" && dir.bad == "" && dir.covers(pp) {
			return dir
		}
	}
	return nil
}

// transferAt reports whether a well-formed transfer directive covers the
// given position (same line, or alone on the line above).
func (p *Pass) transferAt(pos token.Pos) bool {
	return transferCovering(p.Fset, p.directives, pos) != nil
}

// staleDirectives reports well-formed directives that no longer do
// anything, so suppressions cannot rot in place. It runs only in module
// checks: a single-analyzer or single-package run legitimately leaves
// most directives idle. An allow directive is stale when every analyzer
// it names ran and none produced a finding for it to suppress; a transfer
// directive is stale when the transfer analyzer ran and found no
// pooled-buffer escape on its guarded line (transfer verification
// failures are separate transfer findings).
func staleDirectives(dirs []*directive, analyzers []*Analyzer, ranTransfer bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range dirs {
		if dir.bad != "" {
			continue
		}
		switch dir.kind {
		case "allow":
			allRan := true
			for _, name := range dir.analyzers {
				if !hasAnalyzer(analyzers, name) {
					allRan = false
				}
			}
			if allRan && dir.suppressed == 0 {
				out = append(out, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "directive",
					Message: fmt.Sprintf("stale //das:allow directive: no %s finding on the guarded line",
						strings.Join(dir.analyzers, "/")),
				})
			}
		case "transfer":
			if ranTransfer && !dir.resolved {
				out = append(out, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "directive",
					Message:  "stale //das:transfer directive: no pooled-buffer escape on the guarded line",
				})
			}
		}
	}
	return out
}

// Directive validates the das: directives themselves, so a reason-less or
// misspelled exemption is an error rather than a silent no-op.
var Directive = &Analyzer{
	Name: "directive",
	Doc: `report malformed and stale //das:allow and //das:transfer directives

Every directive must carry ' -- reason'; allow directives must name known
analyzers. In module runs (standalone daslint, not the per-package vet
protocol) a well-formed directive that no longer does anything is also
reported: an allow that suppressed no finding of the analyzers it names,
or a transfer whose guarded line carries no pooled-buffer escape. Findings
of this analyzer cannot themselves be suppressed.`,
	Run: func(pass *Pass) error {
		for _, dir := range pass.directives {
			if dir.bad != "" {
				pass.Reportf(dir.pos, "malformed //das:%s directive: %s", dir.kind, dir.bad)
			}
		}
		return nil
	},
}
