package lint

import (
	"go/ast"
	"go/types"
)

// Detrand enforces the determinism contract around randomness and map
// iteration.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: `forbid ambient randomness and map-iteration order leaking into event order

All randomness must flow through a *rand.Rand threaded from the plan or
engine (as internal/fault does): the global math/rand functions draw from
a process-global, randomly seeded source, and a rand.New over anything
but an explicitly seeded rand.NewSource cannot be replayed. Separately,
iterating a map while spawning procs, posting to mailboxes, pushing heap
entries, or appending to a slice that is never sorted lets Go's
randomized map order decide the event order — the classic silent
nondeterminism leak. Iterate over sorted keys instead.`,
	Run: runDetrand,
}

// randPkgs are the math/rand flavors; both have global top-level sources.
var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// seededCtors construct a rand source from an explicit seed argument.
var seededCtors = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true}

func runDetrand(pass *Pass) error {
	inModule := pass.Pkg.Path() == ModulePath ||
		len(pass.Pkg.Path()) > len(ModulePath) && pass.Pkg.Path()[:len(ModulePath)+1] == ModulePath+"/"
	exempt := !inModule
	for _, ex := range simExempt {
		if pass.Pkg.Path() == ex {
			exempt = true
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		if !exempt {
			checkRandCalls(pass, f)
		}
		if simulatedPkg(pass.Pkg.Path()) {
			checkMapRanges(pass, f)
		}
	}
	return nil
}

// checkRandCalls flags global math/rand usage and opaquely-sourced
// rand.New throughout the file, package-scope initializers included.
func checkRandCalls(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return true // methods on a threaded *rand.Rand are the blessed path
		}
		switch {
		case fn.Name() == "New":
			checkRandNew(pass, call, fn.Pkg().Path())
		case seededCtors[fn.Name()]:
			checkSeedArgs(pass, call, fn.Name())
		default:
			pass.Reportf(call.Pos(),
				"global %s.%s draws from the process-global source; thread the plan's seeded *rand.Rand instead",
				fn.Pkg().Name(), fn.Name())
		}
		return true
	})
}

// checkRandNew accepts rand.New over an explicitly seeded constructor or
// a threaded value (identifier, selector, parameter); anything built
// inline some other way is an unseeded source nobody can replay.
func checkRandNew(pass *Pass, call *ast.CallExpr, randPkg string) {
	if len(call.Args) == 0 {
		return
	}
	switch arg := ast.Unparen(call.Args[0]).(type) {
	case *ast.CallExpr:
		inner := calleeFunc(pass.Info, arg)
		if inner != nil && inner.Pkg() != nil && inner.Pkg().Path() == randPkg && seededCtors[inner.Name()] {
			return // seed args vetted by the NewSource/NewPCG case of the walk
		}
		pass.Reportf(call.Pos(),
			"rand.New with an opaque source; construct it as rand.New(rand.NewSource(seed)) with a seed threaded from the plan")
	case *ast.Ident, *ast.SelectorExpr:
		// A threaded source: whoever built it was checked at its
		// construction site.
	default:
		pass.Reportf(call.Pos(),
			"rand.New with an opaque source; construct it as rand.New(rand.NewSource(seed)) with a seed threaded from the plan")
	}
}

// checkSeedArgs rejects seeds derived from the wall clock: a
// time.Now-based seed is the canonical way to smuggle nondeterminism
// past an explicit-seed rule.
func checkSeedArgs(pass *Pass, call *ast.CallExpr, ctor string) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, inner)
			if pkgFuncIs(fn, "time", "Now") {
				pass.Reportf(call.Pos(), "rand.%s seeded from the wall clock; thread the plan's seed instead", ctor)
				return false
			}
			return true
		})
	}
}

// checkMapRanges flags for-range over maps whose body reaches
// event-ordering state.
func checkMapRanges(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, fd, rs)
			return true
		})
	}
}

// orderingCall names the event-ordering function fn resolves to, or "".
func orderingCall(fn *types.Func) string {
	simPkg := ModulePath + "/internal/sim"
	switch {
	case methodIs(fn, simPkg, "Engine", "Spawn"),
		methodIs(fn, simPkg, "Engine", "SpawnDaemon"),
		methodIs(fn, simPkg, "Engine", "AfterFunc"),
		methodIs(fn, simPkg, "Engine", "AfterFuncDaemon"),
		methodIs(fn, simPkg, "Engine", "ScheduleTask"),
		methodIs(fn, simPkg, "Engine", "ResumeIn"):
		return "sim.Engine." + fn.Name()
	case methodIs(fn, simPkg, "Proc", "Spawn"):
		return "sim.Proc.Spawn"
	case methodIs(fn, simPkg, "Mailbox", "Put"):
		return "sim.Mailbox.Put"
	case pkgFuncIs(fn, "container/heap", "Push"):
		return "heap.Push"
	}
	return ""
}

func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := orderingCall(calleeFunc(pass.Info, n)); name != "" {
				pass.Reportf(rs.For,
					"map iteration order reaches %s; iterate over sorted keys instead", name)
			}
		case *ast.AssignStmt:
			checkRangeAppend(pass, fd, rs, n)
		}
		return true
	})
}

// checkRangeAppend flags `dst = append(dst, ...)` inside a map range when
// dst outlives the loop and is never subsequently passed to a sort; the
// slice then carries the map's random order into whatever consumes it.
func checkRangeAppend(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			continue // a shadowing user function, not the predeclared append
		}
		if i >= len(as.Lhs) {
			continue
		}
		dst, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[dst]
		if obj == nil {
			obj = pass.Info.Defs[dst]
		}
		if obj == nil {
			continue
		}
		// Only slices declared outside the loop carry order out of it.
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			continue
		}
		if sortedAfter(pass, fd, rs, obj) {
			continue
		}
		pass.Reportf(rs.For,
			"map iteration order reaches append to %q, which is never sorted afterwards; iterate over sorted keys or sort the result", dst.Name)
	}
}

// sortedAfter reports whether obj appears inside a sort/slices sorting
// call somewhere in fd after the range statement ends.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || !isSortFunc(fn) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}
