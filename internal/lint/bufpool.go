package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Bufpool checks pooled-buffer ownership: every acquire must reach a
// matching release on all return paths of the function, or change owner
// through an explicitly annotated transfer; and a buffer must not be used
// after its release.
var Bufpool = &Analyzer{
	Name: "bufpool",
	Doc: `require a Put on every return path for each bufpool Get, and no use after Put

Tracked acquire/release pairs: bufpool.Pool.Get/Put, pfs.AcquireBuffer/
ReleaseBuffer, and grid.GetFloats/PutFloats (grid.FloatsToBytesInto is
known to return its first argument, so a buffer may flow through it).
The check is per function: a buffer that legitimately changes owner —
returned to the caller, stored in a message, handed to a struct — must be
annotated at the escape site with '//das:transfer -- reason', which makes
the new owner responsible for the Put. The analysis is a conservative
walk of the function's statement structure (if/for/switch joins, defers,
early returns); when it cannot prove a release on some path it says so
rather than staying silent.`,
	Run: runBufpool,
}

var (
	bufpoolPkg = ModulePath + "/internal/bufpool"
	pfsPkg     = ModulePath + "/internal/pfs"
	gridPkg    = ModulePath + "/internal/grid"
)

// poolRole classifies a call's part in the buffer lifecycle.
type poolRole int

const (
	roleNone    poolRole = iota
	roleAcquire          // returns a pooled buffer the caller now owns
	roleRelease          // arg 0 returns to the pool
	rolePass             // returns its arg-0 buffer unchanged (ownership flows through)
)

func classifyCall(pass *Pass, call *ast.CallExpr) poolRole {
	return classifyCallInfo(pass.Info, call)
}

func classifyCallInfo(info *types.Info, call *ast.CallExpr) poolRole {
	fn := calleeFunc(info, call)
	if fn == nil {
		return roleNone
	}
	switch {
	case methodIs(fn, bufpoolPkg, "Pool", "Get"),
		pkgFuncIs(fn, pfsPkg, "AcquireBuffer"),
		pkgFuncIs(fn, gridPkg, "GetFloats"):
		return roleAcquire
	case methodIs(fn, bufpoolPkg, "Pool", "Put"),
		pkgFuncIs(fn, pfsPkg, "ReleaseBuffer"),
		pkgFuncIs(fn, gridPkg, "PutFloats"):
		return roleRelease
	case pkgFuncIs(fn, gridPkg, "FloatsToBytesInto"):
		return rolePass
	}
	return roleNone
}

func runBufpool(pass *Pass) error {
	switch pass.Pkg.Path() {
	case bufpoolPkg:
		return nil // the pool's own implementation hands slices across Get/Put by design
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Analyze each function literal and declaration independently: a
		// buffer acquired inside a closure must be settled inside it.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFuncBuffers(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFuncBuffers(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// A trackedBuf is one acquire site bound to a local variable.
type trackedBuf struct {
	obj        types.Object
	acquire    *ast.CallExpr
	deferred   bool // a defer releases it on every exit
	inClosure  bool // a nested closure releases it; give up precise paths
	reported   bool
	releasedAt token.Pos // last release position on the current walk path
}

// bufState is the per-path ownership state of one tracked buffer.
type bufState int

const (
	bufLive     bufState = iota // acquired, not yet released on this path
	bufReleased                 // released on this path
	bufMaybe                    // released on some joined paths only
	bufDone                     // transferred, reassigned, or already reported
)

func (s bufState) join(o bufState) bufState {
	if s == o {
		return s
	}
	if s == bufDone || o == bufDone {
		return bufDone
	}
	return bufMaybe
}

// checkFuncBuffers finds acquire sites in body (ignoring nested function
// literals, which are analyzed separately) and runs the path walk for
// each.
func checkFuncBuffers(pass *Pass, body *ast.BlockStmt) {
	var bufs []*trackedBuf
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || classifyCall(pass, call) != roleAcquire {
			return
		}
		if b := bindAcquire(pass, body, call); b != nil {
			bufs = append(bufs, b)
		}
	})
	for _, b := range bufs {
		checkBuffer(pass, body, b)
	}
}

// inspectShallow walks n but does not descend into function literals.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}

// bindAcquire resolves which local variable holds the buffer produced by
// call. An acquire that is immediately consumed by something other than
// an assignment or a pass-through needs a transfer annotation; that case
// is reported here and not tracked further.
func bindAcquire(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr) *trackedBuf {
	// Climb through pass-through calls: in
	// out := grid.FloatsToBytesInto(pfs.AcquireBuffer(n), vals)
	// the acquired buffer is what `out` holds.
	expr := ast.Expr(call)
	path, _ := astPath(body, call)
	for i := len(path) - 2; i >= 0; i-- {
		parent := path[i]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			expr = p
			continue
		case *ast.CallExpr:
			if classifyCall(pass, p) == rolePass && len(p.Args) > 0 && ast.Unparen(p.Args[0]) == ast.Unparen(expr) {
				expr = p
				continue
			}
			if classifyCall(pass, p) == roleRelease && len(p.Args) > 0 && ast.Unparen(p.Args[0]) == ast.Unparen(expr) {
				return nil // released on the spot (degenerate but legal)
			}
			// The buffer vanishes into an arbitrary call.
			reportEscape(pass, call, "passed to a function that keeps it")
			return nil
		case *ast.AssignStmt:
			if obj := assignTarget(pass, p, expr); obj != nil {
				return &trackedBuf{obj: obj, acquire: call}
			}
			reportEscape(pass, call, "assigned to a non-local destination")
			return nil
		case *ast.ValueSpec:
			for j, v := range p.Values {
				if ast.Unparen(v) == ast.Unparen(expr) && j < len(p.Names) {
					if obj := pass.Info.Defs[p.Names[j]]; obj != nil {
						return &trackedBuf{obj: obj, acquire: call}
					}
				}
			}
			reportEscape(pass, call, "bound outside a simple variable")
			return nil
		case *ast.ReturnStmt:
			reportEscape(pass, call, "returned to the caller")
			return nil
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "pooled buffer discarded: the Get result is never released")
			return nil
		default:
			// CompositeLit, KeyValueExpr, SendStmt, index, etc: the
			// buffer is stored somewhere the walk cannot follow.
			reportEscape(pass, call, "stored away at its acquire site")
			return nil
		}
	}
	return nil
}

func reportEscape(pass *Pass, call *ast.CallExpr, how string) {
	if pass.transferAt(call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"pooled buffer %s without a release; if ownership moves, annotate the line with //das:transfer -- reason",
		how)
}

// assignTarget returns the object of the plain identifier on the LHS
// matching expr's position on the RHS, or nil.
func assignTarget(pass *Pass, as *ast.AssignStmt, expr ast.Expr) types.Object {
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) != ast.Unparen(expr) || i >= len(as.Lhs) {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	return nil
}

// astPath returns the chain of nodes from root down to target.
func astPath(root ast.Node, target ast.Node) ([]ast.Node, bool) {
	var path []ast.Node
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			if !found {
				path = path[:len(path)-1]
			}
			return true
		}
		path = append(path, n)
		if n == target {
			found = true
			return false
		}
		return true
	})
	if !found {
		return nil, false
	}
	return path, true
}

// checkBuffer runs the conservative path walk for one tracked buffer.
func checkBuffer(pass *Pass, body *ast.BlockStmt, b *trackedBuf) {
	// A transfer annotation at the acquire site declares that ownership
	// leaves this function through a path the walk cannot follow.
	if pass.transferAt(b.acquire.Pos()) {
		return
	}
	// Deferred release anywhere in the function settles every path.
	inspectShallow(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if ok && releasesObj(pass, d.Call, b.obj) {
			b.deferred = true
		}
	})
	// A release inside a nested closure means ownership logic spans
	// functions; the per-path walk would only produce noise, so accept it
	// (the closure was written deliberately) and still check use-after.
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && releasesObj(pass, call, b.obj) {
				b.inClosure = true
			}
			return true
		})
		return false
	})
	if b.deferred || b.inClosure {
		return
	}
	w := &bufWalk{pass: pass, b: b}
	out, fallsThrough := w.stmts(body.List, bufDone)
	// The walk starts tracking at the acquire statement (state flips from
	// bufDone to bufLive there); falling off the end of the function body
	// is an implicit return.
	if fallsThrough {
		w.atExit(out, body.Rbrace)
	}
}

// releasesObj reports whether call releases the buffer held by obj.
func releasesObj(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	if classifyCall(pass, call) != roleRelease || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// usesObj reports whether n references obj outside nested closures.
func usesObj(pass *Pass, n ast.Node, obj types.Object) bool {
	used := false
	inspectShallow(n, func(m ast.Node) {
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
	})
	return used
}

// bufWalk is the statement-structure interpreter for one buffer.
type bufWalk struct {
	pass *Pass
	b    *trackedBuf
}

// atExit checks the buffer's state at a function exit point.
func (w *bufWalk) atExit(st bufState, pos token.Pos) {
	if w.b.reported {
		return
	}
	switch st {
	case bufLive:
		w.b.reported = true
		w.pass.Reportf(w.b.acquire.Pos(),
			"pooled buffer is not released on the return path at line %d; Put it on every path or annotate the escape with //das:transfer -- reason",
			w.pass.Fset.Position(pos).Line)
	case bufMaybe:
		w.b.reported = true
		w.pass.Reportf(w.b.acquire.Pos(),
			"pooled buffer may not be released on the return path at line %d (released on some branches only)",
			w.pass.Fset.Position(pos).Line)
	}
}

// stmts walks a statement list; returns the final state and whether
// control can fall through the end of the list.
func (w *bufWalk) stmts(list []ast.Stmt, st bufState) (bufState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if !term {
			return st, false
		}
	}
	return st, true
}

// stmt walks one statement; the bool is false when control cannot
// continue past it on any path (return, panic, branch).
func (w *bufWalk) stmt(s ast.Stmt, st bufState) (bufState, bool) {
	if w.b.reported {
		return bufDone, true
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ExprStmt:
		return w.simple(s, st), true
	case *ast.AssignStmt:
		return w.simple(s, st), true
	case *ast.DeclStmt:
		return w.simple(s, st), true
	case *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		if ls, ok := s.(*ast.LabeledStmt); ok {
			return w.stmt(ls.Stmt, st)
		}
		return w.simple(s, st), true
	case *ast.ReturnStmt:
		st = w.simple(s, st)
		if st == bufLive || st == bufMaybe {
			// Returning the buffer itself is a transfer if annotated.
			for _, r := range s.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && w.pass.Info.Uses[id] == w.b.obj {
					if w.pass.transferAt(s.Pos()) {
						return bufDone, false
					}
				}
			}
			w.atExit(st, s.Pos())
		}
		return st, false
	case *ast.BranchStmt:
		// break/continue/goto: give up precise tracking of this path.
		return st, false
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.exprState(s.Cond, st)
		thenSt, thenFall := w.stmts(s.Body.List, st)
		elseSt, elseFall := st, true
		if s.Else != nil {
			elseSt, elseFall = w.stmt(s.Else, st)
		}
		switch {
		case thenFall && elseFall:
			return thenSt.join(elseSt), true
		case thenFall:
			return thenSt, true
		case elseFall:
			return elseSt, true
		default:
			return st, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = w.exprState(s.Cond, st)
		}
		bodySt, _ := w.stmts(s.Body.List, st)
		if s.Cond == nil && !loopCanExit(s.Body) {
			// `for {}` with no break: paths that park forever never
			// return, so the loop body's obligations are its own.
			return bodySt, false
		}
		return st.join(bodySt), true
	case *ast.RangeStmt:
		bodySt, _ := w.stmts(s.Body.List, w.exprState(s.X, st))
		return st.join(bodySt), true
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, st)
	case *ast.DeferStmt:
		return w.simple(s, st), true
	case *ast.GoStmt:
		return w.simple(s, st), true
	default:
		return w.simple(s, st), true
	}
}

// branches joins all case bodies of a switch/select with the entry state
// (a missing default keeps the entry state live).
func (w *bufWalk) branches(s ast.Stmt, st bufState) (bufState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = w.exprState(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := bufState(-1)
	anyFall := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			stmts = cs.Body
			if cs.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cs.Body
			if cs.Comm == nil {
				hasDefault = true
			} else {
				st, _ = w.stmt(cs.Comm, st)
			}
		}
		cSt, cFall := w.stmts(stmts, st)
		if cFall {
			anyFall = true
			if out == bufState(-1) {
				out = cSt
			} else {
				out = out.join(cSt)
			}
		}
	}
	if !hasDefault {
		if out == bufState(-1) {
			out = st
		} else {
			out = out.join(st)
		}
		anyFall = true
	}
	if out == bufState(-1) {
		return st, anyFall
	}
	return out, anyFall
}

// loopCanExit reports whether a for body contains a break/return that
// leaves the loop.
func loopCanExit(body *ast.BlockStmt) bool {
	can := false
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				can = true
			}
		case *ast.ReturnStmt:
			can = true
		}
	})
	return can
}

// simple handles a statement with no interesting control flow: acquire
// activation, release, reassignment, use-after-release, panic.
func (w *bufWalk) simple(s ast.Stmt, st bufState) bufState {
	return w.nodeState(s, st)
}

func (w *bufWalk) exprState(e ast.Expr, st bufState) bufState {
	if e == nil {
		return st
	}
	return w.nodeState(e, st)
}

// nodeState scans a leaf node for lifecycle events in source order.
func (w *bufWalk) nodeState(n ast.Node, st bufState) bufState {
	type event struct {
		pos  token.Pos
		kind int // 0 acquire, 1 release, 2 reassign, 3 use, 4 panic-or-exit
	}
	var events []event
	type span struct{ lo, hi token.Pos }
	var releaseSpans []span // idents inside a release call are not "uses"
	inspectShallow(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.CallExpr:
			if m == w.b.acquire {
				events = append(events, event{m.Pos(), 0})
			} else if releasesObj(w.pass, m, w.b.obj) {
				events = append(events, event{m.Pos(), 1})
				releaseSpans = append(releaseSpans, span{m.Pos(), m.End()})
			} else if fn := calleeFunc(w.pass.Info, m); fn == nil {
				if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "panic" && w.pass.Info.Uses[id] == nil {
					events = append(events, event{m.Pos(), 4})
				}
			} else if pkgFuncIs(fn, "os", "Exit") {
				events = append(events, event{m.Pos(), 4})
			}
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || w.pass.Info.Uses[id] != w.b.obj {
					continue
				}
				// v = append(v, ...) style self-updates keep tracking;
				// anything else re-binds the variable away from the pool.
				if i < len(m.Rhs) && usesObj(w.pass, m.Rhs[i], w.b.obj) {
					continue
				}
				events = append(events, event{lhs.Pos(), 2})
			}
		case *ast.Ident:
			if w.pass.Info.Uses[m] == w.b.obj {
				events = append(events, event{m.Pos(), 3})
			}
		}
	})
	// Source order approximates evaluation order well enough here.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].pos < events[j-1].pos; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	for _, ev := range events {
		if ev.kind == 3 {
			inRelease := false
			for _, sp := range releaseSpans {
				if ev.pos >= sp.lo && ev.pos < sp.hi {
					inRelease = true
				}
			}
			if inRelease {
				continue
			}
		}
		switch ev.kind {
		case 0:
			if st == bufDone {
				st = bufLive
			}
		case 1:
			switch st {
			case bufReleased:
				if !w.b.reported {
					w.b.reported = true
					w.pass.Reportf(ev.pos, "pooled buffer released twice (already Put at line %d)",
						w.pass.Fset.Position(w.b.releasedAt).Line)
				}
				return bufDone
			case bufLive, bufMaybe:
				w.b.releasedAt = ev.pos
				st = bufReleased
			}
			// A release before the acquire activates belongs to a
			// previous tenancy of the same variable: ignore.
		case 2:
			if st == bufLive && !w.b.reported && !w.pass.transferAt(ev.pos) {
				w.b.reported = true
				w.pass.Reportf(w.b.acquire.Pos(),
					"pooled buffer is overwritten at line %d before being released",
					w.pass.Fset.Position(ev.pos).Line)
				return bufDone
			}
			st = bufDone
		case 3:
			if st == bufReleased && !w.b.reported {
				w.b.reported = true
				w.pass.Reportf(ev.pos, "pooled buffer used after its Put at line %d",
					w.pass.Fset.Position(w.b.releasedAt).Line)
				return bufDone
			}
		case 4:
			// panic/os.Exit: the pool is process-local garbage anyway.
		}
	}
	return st
}
