package lint

import (
	"go/ast"
	"go/types"
)

// Module-wide function index. Cross-package analysis cannot key on
// types.Object identity: each package of a load is type-checked from
// source while its imports resolve through export data, so the same
// function is a different *types.Func depending on which side of the
// import it is seen from. Canonical string keys — "pkgpath.Func" and
// "pkgpath.Type.Method" — are stable across that boundary and are what
// the flow graph and the reply summaries index by.

// moduleIndex is built once per CheckModule and shared by the module
// analyzers: the function index and the ownership flow graph are each
// constructed on first use.
type moduleIndex struct {
	pkgs  []*Package
	funcs map[string]*funcInfo
	graph *flowGraph
}

// funcInfo is one module function declaration with the package context
// needed to analyze its body.
type funcInfo struct {
	key  string
	pkg  *Package
	decl *ast.FuncDecl
	fn   *types.Func
}

// funcKey returns the canonical cross-package key for fn, or "" when fn
// has no package (builtins) or an unnameable receiver.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		tn := namedTypeName(sig.Recv().Type())
		if tn == nil {
			return ""
		}
		recv = tn.Name() + "."
	}
	return fn.Pkg().Path() + "." + recv + fn.Name()
}

// namedTypeName resolves t (through pointers and instantiations) to the
// defining type name, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// funcIndex builds (once) the map from canonical keys to module function
// declarations. Test files are excluded, matching every analyzer's scope.
func (m *moduleIndex) funcIndex() map[string]*funcInfo {
	if m.funcs != nil {
		return m.funcs
	}
	m.funcs = make(map[string]*funcInfo)
	for _, pkg := range m.pkgs {
		for _, f := range pkg.Files {
			if isTestFile(pkg.Fset, f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				key := funcKey(fn)
				if key == "" {
					continue
				}
				m.funcs[key] = &funcInfo{key: key, pkg: pkg, decl: fd, fn: fn}
			}
		}
	}
	return m.funcs
}
