package kernels

// The allowlist is per-file, not per-package: the same import path does
// not bless go statements outside parallel.go.
func leak() {
	go func() {}() // want `go statement outside the allowlisted scheduler sites`
}
