// Test fixture type-checked as the internal/kernels package: parallel.go
// is on the goroutines allowlist, so its go statements are legal, while
// any other file in the same package is still checked (see shard.go).
package kernels

func fanOut(rows []func()) {
	done := make(chan struct{})
	for _, row := range rows {
		go func() {
			row()
			done <- struct{}{}
		}()
	}
	for range rows {
		<-done
	}
}
