// Test fixture for the bufpool analyzer, exercising the ownership walk
// against the real pool packages.
package fakebuf

import (
	"errors"

	"github.com/hpcio/das/internal/bufpool"
	"github.com/hpcio/das/internal/grid"
)

var pool bufpool.Pool[byte]

var errBad = errors.New("bad")

func use(b []byte) {}

// Straight-line acquire/use/release: the baseline legal shape.
func ok(n int) {
	b := pool.Get(n)
	use(b)
	pool.Put(b)
}

// var-declared buffers are tracked the same as := ones.
func okVar(n int) {
	var b = pool.Get(n)
	use(b)
	pool.Put(b)
}

// A deferred Put settles every path, early returns included.
func deferOK(n int, bad bool) error {
	b := pool.Get(n)
	defer pool.Put(b)
	if bad {
		return errBad
	}
	use(b)
	return nil
}

// The classic error-path leak: the early return skips the Put.
func leakOnError(n int, bad bool) error {
	b := pool.Get(n) // want `pooled buffer is not released on the return path at line \d+`
	if bad {
		return errBad
	}
	pool.Put(b)
	return nil
}

// Released on one branch only: control can fall off the end still live.
func branchOnlyRelease(n int, c bool) {
	b := pool.Get(n) // want `pooled buffer may not be released on the return path at line \d+ \(released on some branches only\)`
	if c {
		pool.Put(b)
	}
}

// Releasing on both arms is complete.
func bothBranchesRelease(n int, c bool) {
	b := pool.Get(n)
	if c {
		use(b)
		pool.Put(b)
	} else {
		pool.Put(b)
	}
}

func useAfterPut(n int) {
	b := pool.Get(n)
	pool.Put(b)
	use(b) // want `pooled buffer used after its Put at line \d+`
}

func doublePut(n int) {
	b := pool.Get(n)
	pool.Put(b)
	pool.Put(b) // want `pooled buffer released twice \(already Put at line \d+\)`
}

func overwritten(n int) {
	b := pool.Get(n) // want `pooled buffer is overwritten at line \d+ before being released`
	b = nil
	_ = b
}

// Escapes: ownership leaving the function needs a //das:transfer.
func directReturn(n int) []byte {
	return pool.Get(n) // want `pooled buffer returned to the caller without a release`
}

func annotatedReturn(n int) []byte {
	//das:transfer -- the caller owns the buffer and releases it
	return pool.Get(n)
}

func trackedThenReturned(n int) []byte {
	b := pool.Get(n)
	use(b)
	//das:transfer -- handed to the caller after staging
	return b
}

func passedAway(n int) {
	use(pool.Get(n)) // want `pooled buffer passed to a function that keeps it without a release`
}

type box struct{ buf []byte }

func storedAway(n int) box {
	var s box
	s.buf = pool.Get(n) // want `pooled buffer assigned to a non-local destination without a release`
	return s
}

func annotatedField(n int) box {
	var s box
	//das:transfer -- the box owns the buffer; its consumer releases it
	s.buf = pool.Get(n)
	return s
}

func discarded(n int) {
	pool.Get(n) // want `pooled buffer discarded: the Get result is never released`
}

// A release inside a closure is accepted: ownership logic deliberately
// spans functions (e.g. a completion callback).
func closureRelease(n int) func() {
	b := pool.Get(n)
	return func() { pool.Put(b) }
}

// grid.FloatsToBytesInto returns its first argument, so the acquired
// buffer flows through it into `out` and the Put on `out` settles it.
func passThrough(vals []float64) {
	out := grid.FloatsToBytesInto(pool.Get(8*len(vals)), vals)
	use(out)
	pool.Put(out)
}

// The float pool pairs with PutFloats just like the byte pools.
func floatsOK(n int) {
	f := grid.GetFloats(n)
	f[0] = 1
	grid.PutFloats(f)
}

func floatsLeak(n int, bad bool) error {
	f := grid.GetFloats(n) // want `pooled buffer is not released on the return path at line \d+`
	if bad {
		return errBad
	}
	grid.PutFloats(f)
	return nil
}
