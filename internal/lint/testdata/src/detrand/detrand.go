// Test fixture for the detrand analyzer, type-checked under a simulated
// import path so both the rand rules and the map-range rules apply.
package fakerand

import (
	"math/rand"
	"time"
)

// The satellite case: a global draw at package scope, hidden in a var
// initializer rather than a function body.
var globalDraw = rand.Intn(10) // want `global rand\.Intn draws from the process-global source`

var threaded rand.Source = rand.NewSource(42)

func globals() {
	_ = rand.Int()                // want `global rand\.Int draws from the process-global source`
	_ = rand.Float64()            // want `global rand\.Float64 draws from the process-global source`
	rand.Shuffle(4, func(i, j int) {}) // want `global rand\.Shuffle draws from the process-global source`
}

func construction(seed int64) {
	good := rand.New(rand.NewSource(seed))
	_ = good.Intn(5) // methods on a threaded *rand.Rand are fine

	alsoGood := rand.New(threaded) // an identifier: vetted at its construction site
	_ = alsoGood

	_ = rand.New(opaque())                               // want `rand\.New with an opaque source`
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}

func opaque() rand.Source { return rand.NewSource(7) }
