package fakerand

import (
	"container/heap"
	"sort"

	"github.com/hpcio/das/internal/sim"
)

type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)         { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any           { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func spawnFromMap(e *sim.Engine, procs map[string]func(*sim.Proc)) {
	for name, fn := range procs { // want `map iteration order reaches sim\.Engine\.Spawn`
		e.Spawn(name, fn)
	}
}

func postFromMap(mb *sim.Mailbox[int], pending map[string]int) {
	for _, v := range pending { // want `map iteration order reaches sim\.Mailbox\.Put`
		mb.Put(v)
	}
}

func pushFromMap(h *intHeap, weights map[string]int) {
	for _, w := range weights { // want `map iteration order reaches heap\.Push`
		heap.Push(h, w)
	}
}

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order reaches append to "keys", which is never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

// The blessed pattern: collect, sort, then act in sorted order.
func keysSorted(m map[string]int, e *sim.Engine, procs map[string]func(*sim.Proc)) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Spawn(k, procs[k])
	}
}

// A slice declared inside the loop body never carries map order out.
func loopLocalAppend(m map[string][]int) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		_ = local
	}
}

// Ranging over a slice is always fine, whatever the body does.
func sliceRange(e *sim.Engine, names []string) {
	for _, name := range names {
		e.Spawn(name, func(p *sim.Proc) {})
	}
}
