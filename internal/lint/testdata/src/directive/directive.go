// Test fixture for the directive analyzer: malformed das: directives are
// themselves findings, so a typo cannot silently suppress nothing.
//
// The want regexps spell the directives' " -- " separator as " .. ":
// a literal "--" inside the comment would be parsed as the directive's
// own reason separator.
package fakedir

import "time"

//das:allow simclock // want `malformed //das:allow directive: missing ' .. reason'`
var missingReason = time.Duration(0)

//das:allow -- forgot to say which analyzer // want `malformed //das:allow directive: names no analyzer`
var noAnalyzer int

//das:allow nosuchcheck -- suppressing a check that does not exist // want `malformed //das:allow directive: unknown analyzer nosuchcheck`
var unknownAnalyzer int

//das:transfer ident -- transfer takes no analyzer list // want `malformed //das:transfer directive: transfer directive takes no arguments before ' .. '`
var transferWithArgs int

//das:transfer // want `malformed //das:transfer directive: missing ' .. reason'`
var transferNoReason int

// Well-formed directives are not findings, even when they suppress
// nothing on their line.
//
//das:allow simclock -- well-formed and inert here
var fine int

//das:transfer -- well-formed and inert here
var alsoFine int
