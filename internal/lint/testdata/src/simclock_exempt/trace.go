// Test fixture type-checked under the internal/trace import path, which
// is on the simclock exemption list: trace emission timestamps real wall
// time by design, so nothing here is a finding.
package trace

import "time"

func stamp() time.Time {
	return time.Now()
}

func throttle() {
	time.Sleep(10 * time.Millisecond)
}
