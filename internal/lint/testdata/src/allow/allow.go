// Test fixture for //das:allow suppression, run through the simclock
// analyzer under a simulated import path.
package fakeallow

import "time"

var base time.Time

func suppressedSameLine() {
	_ = time.Now() //das:allow simclock -- deliberate wall read to exercise same-line suppression
}

func suppressedAbove() {
	//das:allow simclock -- a standalone directive covers the next line
	_ = time.Now()
}

func suppressedMultiName() {
	//das:allow simclock,detrand -- one directive may name several analyzers
	_ = time.Now()
}

func wrongAnalyzer() {
	//das:allow detrand -- names the wrong analyzer, so simclock still fires below
	_ = time.Now() // want `wall-clock time\.Now in simulated package`
}

func trailingDirectiveDoesNotCoverNextLine() {
	_ = time.Since(base) //das:allow simclock -- a trailing directive covers only its own line
	_ = time.Now() // want `wall-clock time\.Now in simulated package`
}

func directiveTwoLinesUpDoesNotCover() {
	//das:allow simclock -- a standalone directive covers only the line right below it
	_ = base.IsZero()
	_ = time.Now() // want `wall-clock time\.Now in simulated package`
}
