// Test fixture for the simclock analyzer: this package is type-checked
// under a simulated import path, so every wall-clock call is a finding.
package fakesim

import "time"

var base time.Time

func reads() {
	_ = time.Now()                    // want `wall-clock time\.Now in simulated package .*fakesim; use the DES clock`
	time.Sleep(time.Millisecond)      // want `wall-clock time\.Sleep`
	<-time.After(time.Second)         // want `wall-clock time\.After`
	_ = time.Tick(time.Second)        // want `wall-clock time\.Tick`
	_ = time.NewTimer(time.Second)    // want `wall-clock time\.NewTimer`
	_ = time.NewTicker(time.Second)   // want `wall-clock time\.NewTicker`
	_ = time.Since(base)              // want `wall-clock time\.Since`
	_ = time.Until(base)              // want `wall-clock time\.Until`
	time.AfterFunc(time.Second, noop) // want `wall-clock time\.AfterFunc`
}

func noop() {}

// Constructing and formatting times is fine; only clock reads are banned.
func formatting() string {
	t := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	return t.Format(time.RFC3339)
}

// Durations are plain arithmetic, not clock reads.
func durations() time.Duration {
	return 3 * time.Second
}
