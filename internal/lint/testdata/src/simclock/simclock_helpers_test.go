// A _test.go file in a simulated package may read the wall clock (test
// harnesses time themselves); the analyzer skips test files entirely.
package fakesim

import "time"

func elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
