// _test.go files may use go freely: test harnesses drive the simulator
// from outside and are not part of the deterministic event loop.
package fakego

func parallelProbe(fns []func()) {
	for _, fn := range fns {
		go fn()
	}
}
