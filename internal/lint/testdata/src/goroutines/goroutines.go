// Test fixture for the goroutines analyzer: an ordinary simulated
// package, so every go statement is a finding — the satellite edge case
// of a go statement appearing in a new, non-allowlisted file.
package fakego

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want `go statement outside the allowlisted scheduler sites`
	}
}

func fireAndForget() {
	go func() { // want `go statement outside the allowlisted scheduler sites`
		println("untracked")
	}()
}

func suppressed() {
	//das:allow goroutines -- exercising the suppression path in the analyzer's own tests
	go func() {}()
}
