// Test fixture asserting the p99 controller's packages stay inside the
// simulated world: type-checked under the internal/metrics and
// internal/control import paths, a wall-clock read must be a finding —
// neither package may ever join the simclock exemption list.
package fakectl

import "time"

func reads() {
	_ = time.Now() // want `wall-clock time\.Now in simulated package`
}
