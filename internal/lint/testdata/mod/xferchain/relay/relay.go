// Package relay re-transfers buffers it does not own: ownership passes
// through it to whatever its caller does with the result.
package relay

// Forward hands the buffer back to its caller; the re-transfer resolves
// because cons releases what it gets from Forward.
func Forward(b []byte) []byte {
	//das:transfer -- ownership continues to Forward's caller
	return b
}

// Hoard accepts a buffer and loses it: a hand-off into Hoard never
// reaches a release.
func Hoard(b []byte) {
	_ = cap(b)
}
