// Package cons is the far end of every satisfied chain in the xferchain
// fixture: it releases what prod hands off, directly or through relay.
package cons

import (
	"example.com/xferchain/prod"
	"example.com/xferchain/relay"
	"example.com/xferchain/sink"
)

// UseProduce consumes the returned-buffer hand-off.
func UseProduce() {
	b := prod.Produce()
	sink.Drain(b)
}

// UseChain consumes the hand-off that rode through relay.Forward.
func UseChain() {
	out := prod.Chain()
	sink.Drain(out)
}

// UseMsg consumes the message-payload hand-off: reading Msg.Data lands on
// the same field node SendMsg stored into.
func UseMsg(m prod.Msg) {
	sink.Drain(m.Data)
}

// Shuffle exercises a second-hop re-transfer: a buffer it owns goes
// through Forward and is drained from the result.
func Shuffle(b []byte) {
	out := relay.Forward(b)
	sink.Drain(out)
}
