// Package sink is the releasing side of the xferchain fixture: the pool
// itself, consumers that discharge buffers, and ones that do not.
package sink

import "github.com/hpcio/das/internal/bufpool"

// Buffers is the fixture's pool; every chain starts at Buffers.Get and is
// satisfied only by reaching a Buffers.Put somewhere in the module.
var Buffers bufpool.Pool[byte]

// Drain releases the buffer it is handed: a parameter hand-off to Drain
// discharges the transfer.
func Drain(b []byte) {
	Buffers.Put(b)
}

// Keep holds the buffer forever: a hand-off to Keep is a leak.
func Keep(b []byte) {
	_ = len(b)
}

// Box is a struct owner with a release path: buffers parked in Data are
// discharged by Close.
type Box struct {
	Data []byte
}

func (b *Box) Close() {
	Buffers.Put(b.Data)
	b.Data = nil
}

// Hole is a struct owner with no release path anywhere in the module.
type Hole struct {
	Data []byte
}
