// Package prod acquires pooled buffers and hands them off in every shape
// the transfer analyzer resolves: returns, call arguments, struct-field
// stores, message payloads, and chains through a relay.
package prod

import (
	"example.com/xferchain/relay"
	"example.com/xferchain/sink"
)

// Msg is a message whose payload a consumer releases.
type Msg struct {
	Data []byte
}

// Lost is a message nobody drains.
type Lost struct {
	Data []byte
}

// Post stands in for a mailbox send: the struct-field node is the
// rendezvous, so the body needs no real transport.
func Post(m Msg) {}

// PostLost is Post for the undrained message type.
func PostLost(m Lost) {}

// Produce returns a fresh buffer; cons releases it.
func Produce() []byte {
	//das:transfer -- caller owns the returned buffer
	return sink.Buffers.Get(8)
}

// LeakReturn returns a fresh buffer that no caller ever releases.
func LeakReturn() []byte {
	//das:transfer -- caller owns the returned buffer
	return sink.Buffers.Get(8) // want "transferred buffer is never released by its new owner"
}

// FeedDrain hands the buffer to a releasing function.
func FeedDrain() {
	b := sink.Buffers.Get(8)
	//das:transfer -- Drain releases it
	sink.Drain(b)
}

// FeedKeep hands the buffer to a function that never releases it.
func FeedKeep() {
	b := sink.Buffers.Get(8)
	//das:transfer -- Keep takes ownership
	sink.Keep(b) // want "transferred buffer is never released by its new owner"
}

// Stash parks the buffer in a struct whose Close releases it.
func Stash(box *sink.Box) {
	b := sink.Buffers.Get(8)
	//das:transfer -- Box.Close releases Data
	box.Data = b
}

// StashHole parks the buffer in a struct with no release path.
func StashHole(h *sink.Hole) {
	b := sink.Buffers.Get(8)
	//das:transfer -- Hole keeps Data
	h.Data = b // want "transferred buffer is never released by its new owner"
}

// SendMsg rides the buffer on a message; cons drains Msg.Data.
func SendMsg() {
	b := sink.Buffers.Get(8)
	//das:transfer -- the receiver drains Msg.Data
	Post(Msg{Data: b})
}

// SendLost rides the buffer on a message no one drains.
func SendLost() {
	b := sink.Buffers.Get(8)
	//das:transfer -- the receiver drains Lost.Data
	PostLost(Lost{Data: b}) // want "transferred buffer is never released by its new owner"
}

// Chain re-transfers through relay.Forward; cons releases the result.
func Chain() []byte {
	b := sink.Buffers.Get(8)
	//das:transfer -- ownership rides through Forward to the caller
	return relay.Forward(b)
}

// ChainLost hands the buffer to a relay that loses it.
func ChainLost() {
	b := sink.Buffers.Get(8)
	//das:transfer -- Hoard takes ownership
	relay.Hoard(b) // want "transferred buffer is never released by its new owner"
}

// StaleNote carries a transfer directive on a line with no pooled-buffer
// escape at all; the directive analyzer reports it as stale.
func StaleNote() {
	n := 0
	//das:transfer -- nothing escapes here // want "stale //das:transfer directive: no pooled-buffer escape"
	n++
	_ = n
}
