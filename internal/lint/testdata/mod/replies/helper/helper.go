// Package helper is the cross-package leg of the replies fixture: its
// reply summary must travel across the package boundary for handlers that
// delegate here to count as discharged.
package helper

import (
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// Ack always answers the request it is handed.
func Ack(net *simnet.Network, p *sim.Proc, msg simnet.Message) {
	net.Respond(p, msg, "ack", 1, metrics.ServerToClient)
}
