// Package handlers exercises the replies analyzer: message handlers that
// always reply (clean), reply on some paths only (findings), reply twice
// (finding), and discharge through closures, delegation, and parametric
// helpers exactly the way the pfs/active/pipeline services do.
package handlers

import (
	"example.com/replies/helper"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// Srv is the fixture's service: just enough to call Network.Respond.
type Srv struct {
	Net *simnet.Network
}

// Clean replies exactly once on its single path.
func (s *Srv) Clean(p *sim.Proc, msg simnet.Message) {
	s.Net.Respond(p, msg, "ok", 1, metrics.ServerToClient)
}

// EarlyReturn drops the reply on its guard path.
func (s *Srv) EarlyReturn(p *sim.Proc, msg simnet.Message, ready bool) {
	if !ready {
		return // want "handler returns without sending a reply on this path"
	}
	s.Net.Respond(p, msg, "ok", 1, metrics.ServerToClient)
}

// Double answers the same request twice on one path.
func (s *Srv) Double(p *sim.Proc, msg simnet.Message) {
	s.Net.Respond(p, msg, "first", 1, metrics.ServerToClient)
	s.Net.Respond(p, msg, "second", 1, metrics.ServerToClient) // want "handler sends a second reply to the same request"
}

// Closures replies through the respond/fail pattern: fail discharges
// because it calls respond, which names the message.
func (s *Srv) Closures(p *sim.Proc, msg simnet.Message, ok bool) {
	respond := func(v any) { s.Net.Respond(p, msg, v, 1, metrics.ServerToClient) }
	fail := func() { respond("err") }
	if ok {
		respond("ok")
		return
	}
	fail()
}

// SwitchGap replies in every case but one; the finding anchors on the
// silent case so a suppression can sit exactly there.
func (s *Srv) SwitchGap(p *sim.Proc, msg simnet.Message) {
	respond := func(v any) { s.Net.Respond(p, msg, v, 1, metrics.ServerToClient) }
	switch msg.Payload.(type) {
	case string:
		respond("text")
	case int: // want "handler replies on some paths only"
		_ = msg.Size
	default:
		respond("other")
	}
}

// PanicTolerated replies on every path that survives: panic ends a path
// without obligation, matching the fast handler's ineligible-request case.
func (s *Srv) PanicTolerated(p *sim.Proc, msg simnet.Message, bad bool) {
	if bad {
		panic("unroutable request")
	}
	s.Net.Respond(p, msg, "ok", 1, metrics.ServerToClient)
}

// Delegate answers by handing the message to an always-replying callee.
func (s *Srv) Delegate(p *sim.Proc, msg simnet.Message) {
	s.reply(p, msg)
}

// CrossDelegate discharges through another package's helper: the callee's
// reply summary crosses the package boundary.
func (s *Srv) CrossDelegate(p *sim.Proc, msg simnet.Message) {
	helper.Ack(s.Net, p, msg)
}

func (s *Srv) reply(p *sim.Proc, msg simnet.Message) {
	s.Net.Respond(p, msg, "ok", 1, metrics.ServerToClient)
}

// DelegateRisky counts as discharged — a sometimes-replying callee's gap
// is the callee's own finding, reported inside risky.
func (s *Srv) DelegateRisky(p *sim.Proc, msg simnet.Message, ok bool) {
	s.risky(p, msg, ok)
}

func (s *Srv) risky(p *sim.Proc, msg simnet.Message, ok bool) {
	if !ok {
		return // want "handler returns without sending a reply on this path"
	}
	s.Net.Respond(p, msg, "ok", 1, metrics.ServerToClient)
}

// run is a parametric helper in the shape of pfs's serveRead: it invokes
// exactly one of its func-typed parameters on every path.
func run(respond func(any), fail func(), ok bool) {
	if !ok {
		fail()
		return
	}
	respond("ok")
}

// Parametric discharges through run: both func-valued arguments can
// reply, and run calls exactly one of them.
func (s *Srv) Parametric(p *sim.Proc, msg simnet.Message, ok bool) {
	respond := func(v any) { s.Net.Respond(p, msg, v, 1, metrics.ServerToClient) }
	fail := func() { respond("err") }
	run(respond, fail, ok)
}

// Purge drops the reply deliberately on the stale-incarnation path; the
// suppression sits on the silent return and is therefore not stale.
func (s *Srv) Purge(p *sim.Proc, msg simnet.Message, stale bool) {
	if stale {
		//das:allow replies -- stale incarnation: the requester was purged, a reply would misdeliver
		return
	}
	s.Net.Respond(p, msg, "ok", 1, metrics.ServerToClient)
}

// Fine always replies; its leftover suppression silences nothing and is
// reported as stale.
func (s *Srv) Fine(p *sim.Proc, msg simnet.Message) {
	//das:allow replies -- obsolete exemption // want "stale //das:allow directive"
	s.Net.Respond(p, msg, "ok", 1, metrics.ServerToClient)
}
