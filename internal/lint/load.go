package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Load loads the packages matching the go list patterns, parsed and fully
// type-checked, ready for Check. It shells out to `go list -export`,
// which compiles (or reuses from the build cache) export data for every
// dependency; type-checking then imports that export data instead of
// re-checking the world from source. This keeps daslint offline-safe and
// dependency-free: the go toolchain is the only requirement.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	type listPkg struct {
		ImportPath string
		Dir        string
		Export     string
		GoFiles    []string
		CgoFiles   []string
		ImportMap  map[string]string
		DepOnly    bool
		Standard   bool
		Module     *struct{ GoVersion string }
		Error      *struct{ Err string }
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}

	exportFiles := make(map[string]string)
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	base := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var loaded []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if len(p.CgoFiles) > 0 {
			// No cgo in this repo; refuse rather than analyze a half-package.
			return nil, fmt.Errorf("package %s uses cgo, which daslint does not support", p.ImportPath)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			if !filepath.IsAbs(name) {
				name = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		goVersion := ""
		if p.Module != nil {
			goVersion = "go" + p.Module.GoVersion
		}
		pkg, err := typeCheck(fset, p.ImportPath, files, importerWithMap(base, p.ImportMap), goVersion)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		loaded = append(loaded, pkg)
	}
	return loaded, nil
}

// importerWithMap applies a package's vendoring/import rewrite map before
// delegating to the shared export-data importer.
func importerWithMap(base types.Importer, importMap map[string]string) types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		return base.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// typeCheck runs go/types over one package's files and bundles the result
// as a lint.Package.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	info := NewTypesInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
