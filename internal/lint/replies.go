package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The replies analyzer checks the request/reply obligation of the simnet
// protocol: a handler that receives a CallTask/Expect request must answer
// it exactly once on every path, or the caller parks forever (classic
// path) or leaks its responder (fast path). The check is interprocedural
// in three ways a per-function scan cannot be:
//
//   - delegation: a handler may answer by handing the message to another
//     function (active's handle passes reduceReq messages to handleReduce);
//     the callee's reply summary decides whether that call discharges.
//   - closures: handlers bind respond/fail closures over the message and
//     reply through them, often transitively (fail calls respond).
//   - parametric helpers: pfs's serveRead never sees the message at all —
//     it receives respond and fail functions and calls exactly one of them
//     on every path. Such helpers discharge when all their func-valued
//     arguments can reply.
//
// Only inconsistent functions are reported: one that replies on some
// paths and not others. A function that never replies is not a reply
// handler (dispatchers that re-enqueue, client-side response callbacks),
// and one that always replies is correct. panic and os.Exit end a path
// without obligation.
var simnetPkg = ModulePath + "/internal/simnet"

var Replies = &Analyzer{
	Name: "replies",
	Doc: `require exactly one reply on every path of a message handler

(module analyzer) Every non-test function outside internal/simnet taking a
simnet.Message by value is summarized as always / sometimes / never
replying, to fixpoint across delegation. A reply is a Network.Respond or
RespondTask naming the message, a call to a function summarized as
replying, an invocation of a closure that (transitively) replies, or a
call to a helper that invokes exactly one of its func-typed parameters on
every path when all func-valued arguments can reply. Functions that reply
on some paths but not others are reported at the offending return or
branch; a second reply on one path is reported as a duplicate. Runs only
in whole-module mode.`,
	RunModule: runReplies,
}

type replyKind int

const (
	replyNever replyKind = iota
	replySometimes
	replyAlways
)

func runReplies(pass *ModulePass) error {
	idx := pass.mod.funcIndex()

	// Message-handling functions in scope, with the parameter object each
	// body refers to.
	msgObjs := make(map[string]types.Object)
	for key, fi := range idx {
		if fi.pkg.Types.Path() == simnetPkg {
			continue
		}
		if obj := messageParam(fi); obj != nil {
			msgObjs[key] = obj
		}
	}
	if len(msgObjs) == 0 {
		return nil
	}

	parametric := parametricHelpers(idx)

	// Reply-kind fixpoint. The discharge predicate only grows as callee
	// summaries rise never -> sometimes -> always, so iteration converges.
	kinds := make(map[string]replyKind)
	for changed := true; changed; {
		changed = false
		for key, obj := range msgObjs {
			fi := idx[key]
			exits, _ := walkReplies(fi, repliesDischarge(fi, obj, kinds, parametric))
			if k := kindOfExits(exits); k > kinds[key] {
				kinds[key] = k
				changed = true
			}
		}
	}

	for key, obj := range msgObjs {
		fi := idx[key]
		exits, doubles := walkReplies(fi, repliesDischarge(fi, obj, kinds, parametric))
		for _, pos := range doubles {
			pass.Reportf(pos, "handler sends a second reply to the same request")
		}
		if kinds[key] != replySometimes {
			continue
		}
		gapReported := false
		for _, e := range exits {
			switch e.st.k {
			case rPending:
				pass.Reportf(e.pos, "handler returns without sending a reply on this path (other paths reply)")
			case rMaybe:
				if gapReported {
					continue
				}
				gapReported = true
				pos := e.st.gap
				if pos == token.NoPos {
					pos = e.pos
				}
				pass.Reportf(pos, "handler replies on some paths only: this branch can return without sending a reply")
			}
		}
	}
	return nil
}

// messageParam returns the object of fi's first by-value simnet.Message
// parameter, or nil.
func messageParam(fi *funcInfo) types.Object {
	sig, ok := fi.fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := flatFieldIdents(fi.decl.Type.Params)
	for i, id := range params {
		if i >= sig.Params().Len() {
			break
		}
		t := sig.Params().At(i).Type()
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		tn := namedTypeName(t)
		if tn == nil || tn.Name() != "Message" || tn.Pkg() == nil || tn.Pkg().Path() != simnetPkg {
			continue
		}
		if id != nil {
			if obj := fi.pkg.Info.Defs[id]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// parametricHelpers summarizes module functions that invoke exactly one
// of their func-typed parameters on every path (pfs serveRead/serveWrite):
// the respond/fail plumbing of a handler, factored out.
func parametricHelpers(idx map[string]*funcInfo) map[string]bool {
	out := make(map[string]bool)
	for key, fi := range idx {
		sig, ok := fi.fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		info := fi.pkg.Info
		funcParams := make(map[types.Object]bool)
		for i, id := range flatFieldIdents(fi.decl.Type.Params) {
			if id == nil || i >= sig.Params().Len() {
				continue
			}
			if _, isFn := sig.Params().At(i).Type().Underlying().(*types.Signature); !isFn {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				funcParams[obj] = true
			}
		}
		if len(funcParams) == 0 {
			continue
		}
		exits, doubles := walkReplies(fi, func(call *ast.CallExpr) bool {
			id, isID := ast.Unparen(call.Fun).(*ast.Ident)
			return isID && funcParams[info.Uses[id]]
		})
		if len(doubles) > 0 || len(exits) == 0 {
			continue
		}
		all := true
		for _, e := range exits {
			if e.st.k != rReplied {
				all = false
			}
		}
		if all {
			out[key] = true
		}
	}
	return out
}

// repliesDischarge builds the discharge predicate for one handler: does
// this call answer the handler's message?
func repliesDischarge(fi *funcInfo, msgObj types.Object, kinds map[string]replyKind, parametric map[string]bool) func(*ast.CallExpr) bool {
	info := fi.pkg.Info
	closures := collectClosures(info, fi.decl.Body)
	dischargingClosure := make(map[types.Object]bool)

	var direct func(call *ast.CallExpr) bool
	var closureDischarges func(fl *ast.FuncLit) bool

	dischargingArg := func(a ast.Expr) bool {
		switch a := ast.Unparen(a).(type) {
		case *ast.Ident:
			return dischargingClosure[info.Uses[a]]
		case *ast.FuncLit:
			return closureDischarges(a)
		}
		return false
	}

	direct = func(call *ast.CallExpr) bool {
		fn := calleeFunc(info, call)
		if fn == nil {
			return false
		}
		if methodIs(fn, simnetPkg, "Network", "Respond") {
			return len(call.Args) >= 2 && refsObj(info, call.Args[1], msgObj)
		}
		if methodIs(fn, simnetPkg, "Network", "RespondTask") {
			return len(call.Args) >= 1 && refsObj(info, call.Args[0], msgObj)
		}
		key := funcKey(fn)
		if key == "" {
			return false
		}
		if kinds[key] != replyNever {
			// Delegation: the callee replies for us. A sometimes-callee
			// still counts here — its own gap is its own finding.
			for _, a := range call.Args {
				if refsObj(info, a, msgObj) {
					return true
				}
			}
			return false
		}
		if parametric[key] {
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() == 0 {
				return false
			}
			np := sig.Params().Len()
			found := false
			for i, a := range call.Args {
				j := min(i, np-1)
				if _, isFn := sig.Params().At(j).Type().Underlying().(*types.Signature); !isFn {
					continue
				}
				if !dischargingArg(a) {
					return false
				}
				found = true
			}
			return found
		}
		return false
	}

	closureDischarges = func(fl *ast.FuncLit) bool {
		found := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if direct(call) {
				found = true
				return true
			}
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && dischargingClosure[info.Uses[id]] {
				found = true
			}
			return true
		})
		return found
	}

	// Closure fixpoint: fail replies because it calls respond, which
	// replies because it calls Respond with the message.
	for changed := true; changed; {
		changed = false
		for obj, fl := range closures {
			if !dischargingClosure[obj] && closureDischarges(fl) {
				dischargingClosure[obj] = true
				changed = true
			}
		}
	}

	return func(call *ast.CallExpr) bool {
		if direct(call) {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && dischargingClosure[info.Uses[id]]
	}
}

// refsObj reports whether e mentions obj.
func refsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// Reply-obligation path states.
const (
	rPending = iota // no reply sent yet on this path
	rReplied        // exactly one reply sent
	rMaybe          // replied on some joined paths only
)

type rState struct {
	k   int
	gap token.Pos // rMaybe: where the non-replying path diverged
}

// joinR merges two path states; the gap position comes from the side
// that has not replied, so a suppression can anchor on the branch that
// legitimately skips the reply.
func joinR(a, b rState, aPos, bPos token.Pos) rState {
	if a.k == b.k {
		if a.gap == token.NoPos {
			a.gap = b.gap
		}
		return a
	}
	out := rState{k: rMaybe}
	switch {
	case a.k == rPending:
		out.gap = aPos
	case b.k == rPending:
		out.gap = bPos
	case a.k == rMaybe:
		out.gap = a.gap
	case b.k == rMaybe:
		out.gap = b.gap
	}
	if out.gap == token.NoPos {
		out.gap = aPos
	}
	return out
}

type repExit struct {
	pos token.Pos
	st  rState
}

// repWalk is the statement-structure interpreter for the reply
// obligation, the same conservative shape as bufpool's buffer walk.
type repWalk struct {
	info      *types.Info
	discharge func(*ast.CallExpr) bool
	exits     []repExit
	doubles   []token.Pos
}

// walkReplies runs the path walk over fi's body and returns every exit
// with its reply state, plus the positions of duplicate replies.
func walkReplies(fi *funcInfo, discharge func(*ast.CallExpr) bool) ([]repExit, []token.Pos) {
	w := &repWalk{info: fi.pkg.Info, discharge: discharge}
	st, falls := w.stmts(fi.decl.Body.List, rState{k: rPending})
	if falls {
		w.exits = append(w.exits, repExit{fi.decl.Body.Rbrace, st})
	}
	return w.exits, w.doubles
}

func kindOfExits(exits []repExit) replyKind {
	if len(exits) == 0 {
		return replyNever // every path panics; no obligation survives
	}
	all, none := true, true
	for _, e := range exits {
		switch e.st.k {
		case rReplied:
			none = false
		case rMaybe:
			all, none = false, false
		case rPending:
			all = false
		}
	}
	switch {
	case all:
		return replyAlways
	case none:
		return replyNever
	}
	return replySometimes
}

func (w *repWalk) stmts(list []ast.Stmt, st rState) (rState, bool) {
	for _, s := range list {
		var cont bool
		st, cont = w.stmt(s, st)
		if !cont {
			return st, false
		}
	}
	return st, true
}

func (w *repWalk) stmt(s ast.Stmt, st rState) (rState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.ReturnStmt:
		var cont bool
		st, cont = w.scan(s, st)
		if cont {
			w.exits = append(w.exits, repExit{s.Pos(), st})
		}
		return st, false
	case *ast.BranchStmt:
		// break/continue/goto: give up precise tracking of this path.
		return st, false
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st, cont := w.scan(s.Cond, st)
		if !cont {
			return st, false
		}
		thenSt, thenFall := w.stmts(s.Body.List, st)
		elseSt, elseFall, elsePos := st, true, s.Pos()
		if s.Else != nil {
			elseSt, elseFall = w.stmt(s.Else, st)
			elsePos = s.Else.Pos()
		}
		switch {
		case thenFall && elseFall:
			return joinR(thenSt, elseSt, s.Body.Pos(), elsePos), true
		case thenFall:
			return thenSt, true
		case elseFall:
			return elseSt, true
		default:
			return st, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st, _ = w.scan(s.Cond, st)
		}
		bodySt, _ := w.stmts(s.Body.List, st)
		if s.Cond == nil && !loopCanExit(s.Body) {
			return bodySt, false
		}
		return joinR(st, bodySt, s.Pos(), s.Pos()), true
	case *ast.RangeStmt:
		st, _ = w.scan(s.X, st)
		bodySt, _ := w.stmts(s.Body.List, st)
		return joinR(st, bodySt, s.Pos(), s.Pos()), true
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, st)
	default:
		return w.scan(s, st)
	}
}

// branches joins all case bodies; a missing default joins in the entry
// state at the switch position (some message may match no case).
func (w *repWalk) branches(s ast.Stmt, st rState) (rState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st, _ = w.scan(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var acc rState
	accPos := token.NoPos
	got, anyFall := false, false
	add := func(cs rState, pos token.Pos) {
		anyFall = true
		if !got {
			acc, accPos, got = cs, pos, true
			return
		}
		acc = joinR(acc, cs, accPos, pos)
	}
	for _, cs := range body.List {
		var stmts []ast.Stmt
		clausePos := cs.Pos()
		switch cs := cs.(type) {
		case *ast.CaseClause:
			stmts = cs.Body
			if cs.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cs.Body
			if cs.Comm == nil {
				hasDefault = true
			} else {
				st, _ = w.stmt(cs.Comm, st)
			}
		}
		cSt, cFall := w.stmts(stmts, st)
		if cFall {
			add(cSt, clausePos)
		}
	}
	if !hasDefault {
		add(st, s.Pos())
	}
	if !got {
		return st, anyFall
	}
	return acc, anyFall
}

// scan processes one straight-line statement or expression: discharge
// events flip the state, a second discharge on a replied path is a
// duplicate, and panic/os.Exit terminate the path without obligation.
func (w *repWalk) scan(n ast.Node, st rState) (rState, bool) {
	if n == nil {
		return st, true
	}
	type event struct {
		pos  token.Pos
		kind int // 0 discharge, 1 terminate
	}
	var events []event
	inspectShallow(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		if w.discharge(call) {
			events = append(events, event{call.Pos(), 0})
			return
		}
		if fn := calleeFunc(w.info, call); fn == nil {
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "panic" && w.info.Uses[id] == nil {
				events = append(events, event{call.Pos(), 1})
			}
		} else if pkgFuncIs(fn, "os", "Exit") {
			events = append(events, event{call.Pos(), 1})
		}
	})
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].pos < events[j-1].pos; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			switch st.k {
			case rPending, rMaybe:
				st = rState{k: rReplied}
			case rReplied:
				w.doubles = append(w.doubles, ev.pos)
			}
		case 1:
			return st, false
		}
	}
	return st, true
}
