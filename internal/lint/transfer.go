package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The transfer analyzer turns //das:transfer from an assertion into a
// checked obligation. A transfer directive says "the buffer escaping on
// this line changes owner"; bufpool believes it and stops tracking. This
// analyzer follows the hand-off instead: it locates the escape on the
// guarded line — a return, a store into a variable or struct field, a
// call argument, a composite-literal field — and asks the module
// ownership flow graph whether the receiving side can ever reach a pool
// release. A hand-off whose new owner never releases is a leak with an
// official-looking comment on it, which is worse than no comment.
var Transfer = &Analyzer{
	Name: "transfer",
	Doc: `verify that //das:transfer hand-offs are released by their new owner

(module analyzer) For every well-formed transfer directive, the escape on
the guarded line is resolved to its ownership-graph node (callee
parameter, caller result, struct field, stored variable) and checked for
reachability to a pool release anywhere in the module — through further
calls, returns, and struct fields carried by mailbox messages. An escape
with no releasing path is reported. Directives whose guarded line carries
no pooled-buffer escape at all are reported by the directive analyzer as
stale. Runs only in whole-module mode: the per-package vet protocol
cannot see across packages.`,
	RunModule: runTransfer,
}

func runTransfer(pass *ModulePass) error {
	byFile := make(map[string][]*directive)
	for _, dir := range pass.directives {
		if dir.kind == "transfer" && dir.bad == "" {
			byFile[dir.file] = append(byFile[dir.file], dir)
		}
	}
	if len(byFile) == 0 {
		return nil
	}
	b := &flowBuilder{g: pass.mod.flowGraph()}
	for _, fi := range pass.mod.funcIndex() {
		dirs := byFile[pass.Fset.Position(fi.decl.Pos()).Filename]
		if len(dirs) == 0 {
			continue
		}
		checkTransfers(pass, b, fi, dirs)
	}
	return nil
}

// checkTransfers resolves every escape on a transfer-guarded line of one
// function and reports the ones whose flow-graph node never reaches the
// released sink.
func checkTransfers(pass *ModulePass, b *flowBuilder, fi *funcInfo, dirs []*directive) {
	info := fi.pkg.Info
	closures := collectClosures(info, fi.decl.Body)
	covering := func(pos token.Pos) *directive {
		pp := pass.Fset.Position(pos)
		for _, dir := range dirs {
			if dir.covers(pp) {
				return dir
			}
		}
		return nil
	}
	verify := func(dir *directive, pos token.Pos, n flowNode, what string) {
		dir.resolved = true
		if !b.g.releases(n) {
			pass.Reportf(pos, "transferred buffer is never released by its new owner (%s)", what)
		}
	}

	var scan func(body *ast.BlockStmt, ret *funcInfo)
	scan = func(body *ast.BlockStmt, ret *funcInfo) {
		ast.Inspect(body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.FuncLit:
				scan(node.Body, nil)
				return false
			case *ast.AssignStmt:
				dir := covering(node.Pos())
				if dir == nil {
					return true
				}
				if len(node.Rhs) == 1 && len(node.Lhs) > 1 {
					for _, lhs := range node.Lhs {
						if !isBufferish(typeOf(info, lhs)) {
							continue
						}
						if dst, ok := b.destNode(info, lhs); ok {
							verify(dir, lhs.Pos(), dst, "stored value")
						}
					}
					return true
				}
				for i, lhs := range node.Lhs {
					if i >= len(node.Rhs) || !isBufferish(typeOf(info, node.Rhs[i])) {
						continue
					}
					if dst, ok := b.destNode(info, lhs); ok {
						verify(dir, lhs.Pos(), dst, "stored value")
					}
				}
			case *ast.ValueSpec:
				dir := covering(node.Pos())
				if dir == nil {
					return true
				}
				for i, v := range node.Values {
					if i >= len(node.Names) || !isBufferish(typeOf(info, v)) {
						continue
					}
					if obj := info.Defs[node.Names[i]]; obj != nil {
						verify(dir, node.Names[i].Pos(), objNode(obj), "stored value")
					}
				}
			case *ast.ReturnStmt:
				dir := covering(node.Pos())
				if dir == nil || len(node.Results) == 0 {
					return true
				}
				if ret == nil {
					// Closure returns stay local to the enclosing
					// declaration; the directive found its escape, but
					// verification happens at whatever the closure's
					// caller does with the value.
					dir.resolved = true
					return true
				}
				sig, ok := ret.fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				nr := sig.Results().Len()
				if len(node.Results) == 1 && nr > 1 {
					for i := 0; i < nr; i++ {
						if isBufferish(sig.Results().At(i).Type()) {
							verify(dir, node.Pos(), resultNode(ret.key, i), "returned value")
						}
					}
					return true
				}
				for i, e := range node.Results {
					if i >= nr || !isBufferish(typeOf(info, e)) {
						continue
					}
					verify(dir, e.Pos(), resultNode(ret.key, i), "returned value")
				}
			case *ast.CallExpr:
				dir := covering(node.Pos())
				if dir == nil {
					return true
				}
				switch classifyCallInfo(info, node) {
				case roleAcquire, rolePass, roleRelease:
					return true
				}
				if fn := calleeFunc(info, node); fn != nil {
					key := funcKey(fn)
					sig, ok := fn.Type().(*types.Signature)
					if key == "" || !ok || sig.Params().Len() == 0 {
						return true
					}
					np := sig.Params().Len()
					for i, a := range node.Args {
						if !isBufferish(typeOf(info, a)) {
							continue
						}
						j := i
						if j >= np {
							j = np - 1
						}
						verify(dir, a.Pos(), paramNode(key, j), "argument")
					}
					return true
				}
				if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
					if fl := closures[info.Uses[id]]; fl != nil {
						params := flatFieldIdents(fl.Type.Params)
						for i, a := range node.Args {
							if i >= len(params) || params[i] == nil || !isBufferish(typeOf(info, a)) {
								continue
							}
							if pobj := info.Defs[params[i]]; pobj != nil {
								verify(dir, a.Pos(), objNode(pobj), "argument")
							}
						}
					}
				}
			case *ast.CompositeLit:
				dir := covering(node.Pos())
				if dir == nil {
					return true
				}
				t := typeOf(info, node)
				tn := namedTypeName(t)
				if tn == nil || tn.Pkg() == nil {
					return true
				}
				st, ok := t.Underlying().(*types.Struct)
				if !ok {
					return true
				}
				typKey := tn.Pkg().Path() + "." + tn.Name()
				for i, elt := range node.Elts {
					name := ""
					val := elt
					if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
						key, isID := kv.Key.(*ast.Ident)
						if !isID {
							continue
						}
						name, val = key.Name, kv.Value
					} else if i < st.NumFields() {
						name = st.Field(i).Name()
					}
					if name == "" || !isBufferish(typeOf(info, val)) {
						continue
					}
					verify(dir, val.Pos(), flowNode{kind: 'f', typ: typKey, fld: name}, "field value")
				}
			}
			return true
		})
	}
	scan(fi.decl.Body, fi)
}
