package lint_test

import (
	"testing"

	"github.com/hpcio/das/internal/lint"
	"github.com/hpcio/das/internal/lint/linttest"
)

// Each testdata package is type-checked under a chosen import path, so
// the fixtures can pose as simulated packages, exempt packages, or
// allowlisted files of the real module.

func TestSimclock(t *testing.T) {
	linttest.Run(t, lint.Simclock, "simclock", lint.ModulePath+"/internal/fakesim")
}

func TestSimclockExemptPackage(t *testing.T) {
	// internal/trace is on the exemption list: same code, zero findings.
	linttest.Run(t, lint.Simclock, "simclock_exempt", lint.ModulePath+"/internal/trace")
}

func TestSimclockOutsideModule(t *testing.T) {
	// The same wall-clock calls in a non-internal package are fine too.
	linttest.Run(t, lint.Simclock, "simclock_exempt", lint.ModulePath+"/cmd/faketool")
}

func TestSimclockCoversControllerPackages(t *testing.T) {
	// The unified p99 controller and its quantile sketch are simulated
	// subsystems: byte-identical runs depend on them staying off the wall
	// clock, so neither package may ever join the exemption list. The
	// same fixture that fires in a simulated package must fire under
	// their import paths.
	linttest.Run(t, lint.Simclock, "simclock_controller", lint.ModulePath+"/internal/metrics")
	linttest.Run(t, lint.Simclock, "simclock_controller", lint.ModulePath+"/internal/control")
}

func TestSimclockCoversPipelinePackage(t *testing.T) {
	// The server-side operator pipeline replays byte-identically across
	// runs (the -pipeline experiment asserts it), which depends on every
	// timestamp coming from the simulated clock. The package may never
	// join the exemption list.
	linttest.Run(t, lint.Simclock, "simclock_controller", lint.ModulePath+"/internal/pipeline")
}

func TestDetrand(t *testing.T) {
	linttest.Run(t, lint.Detrand, "detrand", lint.ModulePath+"/internal/fakerand")
}

func TestGoroutines(t *testing.T) {
	linttest.Run(t, lint.Goroutines, "goroutines", lint.ModulePath+"/internal/fakego")
}

func TestGoroutinesAllowlistedFile(t *testing.T) {
	// parallel.go is allowlisted for internal/kernels; shard.go in the
	// same package is not.
	linttest.Run(t, lint.Goroutines, "goroutines_allow", lint.ModulePath+"/internal/kernels")
}

func TestGoroutinesAllowlistIsPerPackage(t *testing.T) {
	// The same files under a different import path lose the allowlist:
	// parallel.go's go statements become findings too. Can't reuse the
	// want comments (they differ per path), so just count diagnostics.
	countDiagnostics(t, lint.Goroutines, "goroutines_allow", lint.ModulePath+"/internal/fakekernels", 2)
}

func TestBufpool(t *testing.T) {
	linttest.Run(t, lint.Bufpool, "bufpool", lint.ModulePath+"/internal/fakebuf")
}

func TestAllowDirectives(t *testing.T) {
	linttest.Run(t, lint.Simclock, "allow", lint.ModulePath+"/internal/fakeallow")
}

func TestDirective(t *testing.T) {
	linttest.Run(t, lint.Directive, "directive", lint.ModulePath+"/internal/fakedir")
}

func TestTransferModule(t *testing.T) {
	// The transfer chains only exist module-wide: prod's hand-offs resolve
	// (or leak) through relay, sink, and cons. Directive rides along so the
	// stale-transfer check is exercised in the same run.
	linttest.RunModule(t,
		[]*lint.Analyzer{lint.Transfer, lint.Directive},
		"xferchain",
		[][2]string{
			{"sink", "example.com/xferchain/sink"},
			{"relay", "example.com/xferchain/relay"},
			{"prod", "example.com/xferchain/prod"},
			{"cons", "example.com/xferchain/cons"},
		})
}

func TestRepliesModule(t *testing.T) {
	linttest.RunModule(t,
		[]*lint.Analyzer{lint.Replies, lint.Directive},
		"replies",
		[][2]string{
			{"helper", "example.com/replies/helper"},
			{"handlers", "example.com/replies/handlers"},
		})
}

func countDiagnostics(t *testing.T, a *lint.Analyzer, dir, pkgpath string, want int) {
	t.Helper()
	diags := linttest.Diagnostics(t, a, dir, pkgpath)
	if len(diags) != want {
		t.Errorf("got %d diagnostics, want %d:", len(diags), want)
		for _, d := range diags {
			t.Errorf("  %s", d.Message)
		}
	}
}
