package lint

import (
	"go/ast"
)

// wallClockFuncs are the package time entry points that read or wait on
// the wall clock. Pure arithmetic on time.Duration/time.Time values is
// fine; acquiring "now" or scheduling against it is not.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Simclock forbids wall-clock time in simulated packages.
var Simclock = &Analyzer{
	Name: "simclock",
	Doc: `forbid wall-clock time (time.Now, time.Sleep, ...) in simulated packages

Simulated code runs on the discrete-event clock: timestamps are sim.Time
read from Engine.Now/Proc.Now, and waiting is Proc.Sleep or a mailbox
timeout. A single time.Now or time.Sleep in a simulated package ties
event timing to the host scheduler and silently breaks seed-for-seed
reproducibility. Packages that legitimately touch the wall clock (the
trace file sinks, the linter itself) are allowlisted as whole packages in
simExempt; _test.go files are always exempt.`,
	Run: runSimclock,
}

func runSimclock(pass *Pass) error {
	if !simulatedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallClockFuncs[fn.Name()] && pkgFuncIs(fn, "time", fn.Name()) {
				pass.Reportf(call.Pos(),
					"wall-clock time.%s in simulated package %s; use the DES clock (sim.Time, Proc.Sleep)",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
