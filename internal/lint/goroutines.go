package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// goAllowlist names the files where a raw go statement is legal, as
// (package path, file basename) pairs. internal/sim/engine.go owns the
// one blessed goroutine launch per Proc; internal/kernels/parallel.go is
// the row-sharded kernel executor, which is outside the DES (it computes
// between events and is byte-identical to the sequential path). Extend
// this table — with a comment saying why — rather than sprinkling
// //das:allow.
var goAllowlist = map[[2]string]bool{
	{ModulePath + "/internal/sim", "engine.go"}:       true,
	{ModulePath + "/internal/kernels", "parallel.go"}: true,
}

// Goroutines forbids go statements outside the blessed scheduler sites.
var Goroutines = &Analyzer{
	Name: "goroutines",
	Doc: `forbid go statements outside the blessed scheduler sites

Simulated concurrency is a sim.Proc: the engine runs exactly one
goroutine at a time, handing off on park/unpark, which is what makes the
event order a pure function of the seed. A stray go statement introduces
real parallelism the engine cannot serialize. Only
internal/sim/engine.go (the Proc launcher itself) and
internal/kernels/parallel.go (compute between events) may use go;
_test.go files are exempt.`,
	Run: runGoroutines,
}

func runGoroutines(pass *Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), ModulePath) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if goAllowlist[[2]string{pass.Pkg.Path(), base}] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"go statement outside the allowlisted scheduler sites; spawn a sim.Proc (or extend goAllowlist with a justification)")
			}
			return true
		})
	}
	return nil
}
