package lint

import (
	"go/ast"
	"go/types"
)

// The module ownership flow graph. Nodes stand for the places a pooled
// buffer can live — local variables, function parameters and results,
// struct fields — plus one distinguished sink for "returned to the pool".
// Edges follow value flow: assignment and extraction, call arguments into
// parameters, returns into results, stores into fields, appends into
// slices. A buffer hand-off is *discharged* when its node can reach the
// released sink: some owner, however many calls and messages away,
// eventually releases it.
//
// Struct-field nodes are keyed by type, not by instance, which is what
// lets a hand-off ride a message with no mailbox modeling at all: the
// producer stores into readResp.Data and the consumer loads from
// readResp.Data, and both sides meet at the same node. The graph is
// flow-insensitive and existential by design — "does any path in any new
// owner release this" — because the per-path, per-function discipline is
// already bufpool's job; transfer's job is making sure an annotated
// escape does not dead-end.

// A flowNode is one vertex of the ownership graph. kind 'o' is a local
// object (unique per source-checked package), 'p'/'r' are a function's
// parameter/result keyed by canonical function key (stable across the
// export-data import boundary), 'f' is a struct field keyed by type, and
// 'R' is the released sink.
type flowNode struct {
	kind byte
	obj  types.Object // 'o'
	fn   string       // 'p', 'r': canonical function key
	idx  int          // 'p', 'r': flat parameter/result index
	typ  string       // 'f': "pkgpath.TypeName"
	fld  string       // 'f': field name
}

var releasedNode = flowNode{kind: 'R'}

func objNode(o types.Object) flowNode        { return flowNode{kind: 'o', obj: o} }
func paramNode(key string, i int) flowNode   { return flowNode{kind: 'p', fn: key, idx: i} }
func resultNode(key string, i int) flowNode  { return flowNode{kind: 'r', fn: key, idx: i} }

// fieldNode keys a field by the static type of the selector base, so
// producer stores and consumer loads land on the same node regardless of
// which package looks at the struct.
func fieldNode(info *types.Info, sel *ast.SelectorExpr) (flowNode, bool) {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return flowNode{}, false
	}
	tn := namedTypeName(typeOf(info, sel.X))
	if tn == nil || tn.Pkg() == nil {
		return flowNode{}, false
	}
	return flowNode{kind: 'f', typ: tn.Pkg().Path() + "." + tn.Name(), fld: sel.Sel.Name}, true
}

type flowGraph struct {
	edges map[flowNode][]flowNode
	reach map[flowNode]bool
}

func (g *flowGraph) edge(src, dst flowNode) {
	g.edges[src] = append(g.edges[src], dst)
}

// releases reports whether n can reach the released sink. The reachable
// set is computed once by reverse BFS; it is a set, so the map-iteration
// order of the build never shows in results.
func (g *flowGraph) releases(n flowNode) bool {
	if g.reach == nil {
		rev := make(map[flowNode][]flowNode)
		for src, dsts := range g.edges {
			for _, d := range dsts {
				rev[d] = append(rev[d], src)
			}
		}
		g.reach = map[flowNode]bool{releasedNode: true}
		queue := []flowNode{releasedNode}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, p := range rev[cur] {
				if !g.reach[p] {
					g.reach[p] = true
					queue = append(queue, p)
				}
			}
		}
	}
	return g.reach[n]
}

// flowGraph builds (once) the ownership graph over every non-test
// function of the load.
func (m *moduleIndex) flowGraph() *flowGraph {
	if m.graph != nil {
		return m.graph
	}
	b := &flowBuilder{g: &flowGraph{edges: make(map[flowNode][]flowNode)}}
	for _, fi := range m.funcIndex() {
		b.declEdges(fi)
		b.scanBody(fi.pkg, fi, fi.decl.Body, collectClosures(fi.pkg.Info, fi.decl.Body))
	}
	m.graph = b.g
	return m.graph
}

type flowBuilder struct {
	g *flowGraph
}

// declEdges links a function's canonical parameter nodes to its local
// parameter objects (values arriving at call sites flow into the body)
// and its named result objects to its result nodes (naked returns).
func (b *flowBuilder) declEdges(fi *funcInfo) {
	info := fi.pkg.Info
	sig, ok := fi.fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, id := range flatFieldIdents(fi.decl.Type.Params) {
		if id == nil || i >= sig.Params().Len() || !isBufferish(sig.Params().At(i).Type()) {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			b.g.edge(paramNode(fi.key, i), objNode(obj))
		}
	}
	if fi.decl.Type.Results == nil {
		return
	}
	for i, id := range flatFieldIdents(fi.decl.Type.Results) {
		if id == nil || i >= sig.Results().Len() || !isBufferish(sig.Results().At(i).Type()) {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			b.g.edge(objNode(obj), resultNode(fi.key, i))
		}
	}
}

// scanBody adds edges for every statement of body. Function literals are
// scanned with no result context (a closure's returns stay local), but
// they share the enclosing declaration's closure bindings and local
// objects, which is how respond/fail-style helpers participate in the
// graph for free.
func (b *flowBuilder) scanBody(pkg *Package, fi *funcInfo, body *ast.BlockStmt, closures map[types.Object]*ast.FuncLit) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			b.scanBody(pkg, nil, n.Body, closures)
			return false
		case *ast.AssignStmt:
			b.assign(info, n)
		case *ast.ValueSpec:
			b.valueSpec(info, n)
		case *ast.ReturnStmt:
			b.returnStmt(info, fi, n)
		case *ast.CallExpr:
			b.callEdges(info, n, closures)
		case *ast.CompositeLit:
			b.composite(info, n)
		case *ast.RangeStmt:
			b.rangeStmt(info, n)
		}
		return true
	})
}

func (b *flowBuilder) assign(info *types.Info, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		for i, lhs := range s.Lhs {
			if !isBufferish(typeOf(info, lhs)) {
				continue
			}
			dst, ok := b.destNode(info, lhs)
			if !ok {
				continue
			}
			for _, src := range b.srcAt(info, s.Rhs[0], i) {
				b.g.edge(src, dst)
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) || !isBufferish(typeOf(info, s.Rhs[i])) {
			continue
		}
		dst, ok := b.destNode(info, lhs)
		if !ok {
			continue
		}
		for _, src := range b.srcNodes(info, s.Rhs[i]) {
			b.g.edge(src, dst)
		}
	}
}

func (b *flowBuilder) valueSpec(info *types.Info, s *ast.ValueSpec) {
	for i, v := range s.Values {
		if i >= len(s.Names) || !isBufferish(typeOf(info, v)) {
			continue
		}
		obj := info.Defs[s.Names[i]]
		if obj == nil {
			continue
		}
		for _, src := range b.srcNodes(info, v) {
			b.g.edge(src, objNode(obj))
		}
	}
}

func (b *flowBuilder) returnStmt(info *types.Info, fi *funcInfo, s *ast.ReturnStmt) {
	if fi == nil || len(s.Results) == 0 {
		return
	}
	sig, ok := fi.fn.Type().(*types.Signature)
	if !ok {
		return
	}
	nr := sig.Results().Len()
	if len(s.Results) == 1 && nr > 1 {
		for i := 0; i < nr; i++ {
			if !isBufferish(sig.Results().At(i).Type()) {
				continue
			}
			for _, src := range b.srcAt(info, s.Results[0], i) {
				b.g.edge(src, resultNode(fi.key, i))
			}
		}
		return
	}
	for i, e := range s.Results {
		if i >= nr || !isBufferish(typeOf(info, e)) {
			continue
		}
		for _, src := range b.srcNodes(info, e) {
			b.g.edge(src, resultNode(fi.key, i))
		}
	}
}

// callEdges adds the statement-level edges of one call: releases into the
// sink, buffer arguments into callee parameter nodes (named functions) or
// closure parameter objects (local function literals).
func (b *flowBuilder) callEdges(info *types.Info, call *ast.CallExpr, closures map[types.Object]*ast.FuncLit) {
	switch classifyCallInfo(info, call) {
	case roleRelease:
		if len(call.Args) > 0 {
			for _, src := range b.srcNodes(info, call.Args[0]) {
				b.g.edge(src, releasedNode)
			}
		}
		return
	case roleAcquire, rolePass:
		return
	}
	if fn := calleeFunc(info, call); fn != nil {
		key := funcKey(fn)
		sig, ok := fn.Type().(*types.Signature)
		if key == "" || !ok || sig.Params().Len() == 0 {
			return
		}
		np := sig.Params().Len()
		for i, a := range call.Args {
			if !isBufferish(typeOf(info, a)) {
				continue
			}
			j := i
			if j >= np {
				j = np - 1 // variadic tail
			}
			for _, src := range b.srcNodes(info, a) {
				b.g.edge(src, paramNode(key, j))
			}
		}
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	fl := closures[info.Uses[id]]
	if fl == nil {
		return
	}
	params := flatFieldIdents(fl.Type.Params)
	for i, a := range call.Args {
		if i >= len(params) || params[i] == nil || !isBufferish(typeOf(info, a)) {
			continue
		}
		pobj := info.Defs[params[i]]
		if pobj == nil {
			continue
		}
		for _, src := range b.srcNodes(info, a) {
			b.g.edge(src, objNode(pobj))
		}
	}
}

// composite adds field-store edges for struct literals: T{Data: buf}
// parks the buffer on the same node as an explicit x.Data = buf store.
func (b *flowBuilder) composite(info *types.Info, lit *ast.CompositeLit) {
	t := typeOf(info, lit)
	tn := namedTypeName(t)
	if tn == nil || tn.Pkg() == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		if named, isNamed := t.(*types.Named); isNamed {
			st, ok = named.Underlying().(*types.Struct)
		}
		if !ok {
			return
		}
	}
	typKey := tn.Pkg().Path() + "." + tn.Name()
	for i, elt := range lit.Elts {
		name := ""
		val := elt
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			key, isID := kv.Key.(*ast.Ident)
			if !isID {
				continue
			}
			name, val = key.Name, kv.Value
		} else if i < st.NumFields() {
			name = st.Field(i).Name()
		}
		if name == "" || !isBufferish(typeOf(info, val)) {
			continue
		}
		dst := flowNode{kind: 'f', typ: typKey, fld: name}
		for _, src := range b.srcNodes(info, val) {
			b.g.edge(src, dst)
		}
	}
}

func (b *flowBuilder) rangeStmt(info *types.Info, s *ast.RangeStmt) {
	id, ok := s.Value.(*ast.Ident)
	if !ok || !isBufferish(typeOf(info, id)) {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	for _, src := range b.srcNodes(info, s.X) {
		b.g.edge(src, objNode(obj))
	}
}

// srcNodes resolves the flow-graph sources of an expression: the nodes
// whose value e denotes. Extraction (indexing, slicing, field loads,
// type assertions) resolves to the container's node; pass-through calls
// resolve to their argument; calls to named functions resolve to the
// callee's result node.
func (b *flowBuilder) srcNodes(info *types.Info, e ast.Expr) []flowNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return []flowNode{objNode(v)}
		}
	case *ast.SelectorExpr:
		if n, ok := fieldNode(info, e); ok {
			return []flowNode{n}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
			return []flowNode{objNode(v)} // package-level variable
		}
	case *ast.IndexExpr:
		if tv, ok := info.Types[e.X]; ok && tv.IsValue() {
			return b.srcNodes(info, e.X)
		}
	case *ast.SliceExpr:
		return b.srcNodes(info, e.X)
	case *ast.StarExpr:
		return b.srcNodes(info, e.X)
	case *ast.UnaryExpr:
		return b.srcNodes(info, e.X)
	case *ast.TypeAssertExpr:
		return b.srcNodes(info, e.X)
	case *ast.CallExpr:
		return b.callNodes(info, e, 0)
	case *ast.CompositeLit:
		// A slice literal of buffers denotes its elements.
		if _, ok := typeOfUnderlying(info, e).(*types.Slice); ok {
			var out []flowNode
			for _, elt := range e.Elts {
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					elt = kv.Value
				}
				out = append(out, b.srcNodes(info, elt)...)
			}
			return out
		}
	}
	return nil
}

// callNodes resolves result idx of a call expression: conversions and
// pass-throughs forward their argument, acquires spring fresh buffers
// (no source node), named callees yield their result node.
func (b *flowBuilder) callNodes(info *types.Info, call *ast.CallExpr, idx int) []flowNode {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return b.srcNodes(info, call.Args[0])
		}
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				var out []flowNode
				for _, a := range call.Args {
					out = append(out, b.srcNodes(info, a)...)
				}
				return out
			}
			return nil
		}
	}
	switch classifyCallInfo(info, call) {
	case roleRelease:
		return nil
	case rolePass:
		if len(call.Args) > 0 {
			return b.srcNodes(info, call.Args[0])
		}
		return nil
	}
	// Acquires resolve like any named call: linking result(AcquireBuffer, 0)
	// to the caller's variable is what discharges the transfer directive
	// inside the acquire helper itself.
	if key := funcKey(calleeFunc(info, call)); key != "" {
		return []flowNode{resultNode(key, idx)}
	}
	return nil
}

// srcAt resolves position i of a multi-value right-hand side.
func (b *flowBuilder) srcAt(info *types.Info, e ast.Expr, i int) []flowNode {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return b.callNodes(info, call, i)
	}
	if i == 0 {
		return b.srcNodes(info, e)
	}
	return nil
}

// destNode resolves the flow-graph destination of an assignment target.
func (b *flowBuilder) destNode(info *types.Info, lhs ast.Expr) (flowNode, bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return flowNode{}, false
		}
		obj := info.Defs[lhs]
		if obj == nil {
			obj = info.Uses[lhs]
		}
		if v, ok := obj.(*types.Var); ok {
			return objNode(v), true
		}
	case *ast.SelectorExpr:
		if n, ok := fieldNode(info, lhs); ok {
			return n, true
		}
		if v, ok := info.Uses[lhs.Sel].(*types.Var); ok && !v.IsField() {
			return objNode(v), true
		}
	case *ast.IndexExpr:
		// out[i] = buf: the container holds the buffer.
		if nodes := b.srcNodes(info, lhs.X); len(nodes) == 1 {
			return nodes[0], true
		}
	}
	return flowNode{}, false
}

// collectClosures maps local variables bound to function literals,
// anywhere in body (nested closures included).
func collectClosures(info *types.Info, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	closures := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				fl, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					closures[obj] = fl
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				fl, ok := ast.Unparen(v).(*ast.FuncLit)
				if !ok || i >= len(n.Names) {
					continue
				}
				if obj := info.Defs[n.Names[i]]; obj != nil {
					closures[obj] = fl
				}
			}
		}
		return true
	})
	return closures
}

// flatFieldIdents flattens a field list to one ident per flat index
// (nil for unnamed fields), matching types.Signature indexing.
func flatFieldIdents(fl *ast.FieldList) []*ast.Ident {
	if fl == nil {
		return nil
	}
	var out []*ast.Ident
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, name)
		}
	}
	return out
}

// isBufferish reports whether t is a pooled-buffer-shaped type: a slice
// of bytes or floats, or a slice of such slices (batched payloads).
func isBufferish(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	switch e := s.Elem().Underlying().(type) {
	case *types.Basic:
		return e.Kind() == types.Uint8 || e.Kind() == types.Float32 || e.Kind() == types.Float64
	case *types.Slice:
		if b, ok := e.Elem().Underlying().(*types.Basic); ok {
			return b.Kind() == types.Uint8 || b.Kind() == types.Float32 || b.Kind() == types.Float64
		}
	}
	return false
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func typeOfUnderlying(info *types.Info, e ast.Expr) types.Type {
	t := typeOf(info, e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}
