package predict

import (
	"testing"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/layout"
)

// The prediction core runs on the request path of every DAS submission;
// these benchmarks size its cost at the paper's full-scale geometry
// (24 GB file, 64 KiB strips, 12 servers, 8-neighbor pattern).
func fullScaleParams() Params {
	return Params{
		ElemSize:     8,
		StripSize:    64 * 1024,
		FileSize:     24 << 20,
		Width:        8192,
		OutputFactor: 1,
	}
}

func BenchmarkAnalyzeRoundRobin(b *testing.B) {
	pat := features.Pattern{Name: "flow-routing", Offsets: features.EightNeighbor()}
	p := fullScaleParams()
	lay := layout.NewRoundRobin(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(pat, p, lay); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecideImprovedLayout(b *testing.B) {
	pat := features.Pattern{Name: "flow-routing", Offsets: features.EightNeighbor()}
	p := fullScaleParams()
	lay := layout.NewGroupedReplicated(12, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decide(pat, p, lay); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchPlanFullFile(b *testing.B) {
	lc := layout.NewLocator(8, 64*1024, layout.NewRoundRobin(12))
	pat := features.Pattern{Name: "flow-routing", Offsets: features.EightNeighbor()}
	offs := pat.Resolve(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan := FetchPlan(lc, offs, 24<<20); len(plan) == 0 {
			b.Fatal("empty plan")
		}
	}
}
