package predict

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

// pipeParams: 4-element strips (32 bytes), 16 elements total.
func pipeParams() Params {
	return Params{ElemSize: 8, StripSize: 32, FileSize: 128, Width: 4, OutputFactor: 1}
}

// Hand-checked lower bound: round-robin D=2 over 4 strips cuts at
// elements 4, 8, 12; a (back=2, fwd=5) cone moves 2+5 across the first
// two cuts and 2+min(5, 16-12)=2+4 across the last.
func TestPipelineLowerBoundExactEdgeClamp(t *testing.T) {
	lb, err := PipelineLowerBound(pipeParams(), layout.NewRoundRobin(2), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(8 * (7 + 7 + 6)); lb != want {
		t.Fatalf("lower bound = %d, want %d", lb, want)
	}
}

// Grouped layouts cut only at group boundaries, so the bound shrinks with
// the cut count, and one server (no cuts) bounds at zero.
func TestPipelineLowerBoundFollowsCuts(t *testing.T) {
	p := Params{ElemSize: 8, StripSize: 32, FileSize: 256, Width: 4, OutputFactor: 1} // 8 strips
	rr, err := PipelineLowerBound(p, layout.NewRoundRobin(2), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := PipelineLowerBound(p, layout.NewGroupedReplicated(2, 2, 1), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr != 7*2*8 || grouped != 3*2*8 {
		t.Fatalf("bounds = rr %d, grouped %d; want 112 and 48", rr, grouped)
	}
	single, err := PipelineLowerBound(p, layout.NewRoundRobin(1), 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if single != 0 {
		t.Fatalf("single-server bound = %d, want 0", single)
	}
}

func chainSpec() PipelineSpec {
	return PipelineSpec{
		Stages: []PipelineStage{
			{Name: "a", Back: 2, Fwd: 2},
			{Name: "b", Back: 2, Fwd: 2},
			{Name: "c", Back: 2, Fwd: 2},
			{Name: "r", Reduce: true},
		},
		PrefixLen:  1,
		PrefixBack: 2, PrefixFwd: 2,
		DAGBack: 6, DAGFwd: 6,
	}
}

func TestDecidePipelinePricesStagesAndFusesZeroReach(t *testing.T) {
	p := pipeParams()
	lay := layout.NewRoundRobin(2) // cuts at 4, 8, 12
	d, err := DecidePipeline(chainSpec(), p, lay, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stages != 4 || d.FusedStages != 1 {
		t.Fatalf("stages = %d fused = %d, want 4 and 1 (the zero-reach reduce)", d.Stages, d.FusedStages)
	}
	// No local halo on round-robin: the prefix fetches its full band.
	if want := int64(3 * 4 * 8); d.FetchBytes != want {
		t.Fatalf("fetch bytes = %d, want %d", d.FetchBytes, want)
	}
	// Stages b and c each exchange (2+2)·8 across three cuts.
	if want := int64(2 * 3 * 4 * 8); d.ExchangeBytes != want {
		t.Fatalf("exchange bytes = %d, want %d", d.ExchangeBytes, want)
	}
	if d.WritebackReplicaBytes != 0 {
		t.Fatalf("round-robin writeback replicas = %d", d.WritebackReplicaBytes)
	}
	// Normal I/O: three raster passes at 2×128 plus the reduce's read.
	if want := int64(3*256 + 128); d.NormalNetBytes != want {
		t.Fatalf("normal bytes = %d, want %d", d.NormalNetBytes, want)
	}
	if !d.Offload || !d.BeatsPerPass {
		t.Fatalf("small-halo chain should win outright: %+v", d)
	}
	if d.LowerBoundBytes <= 0 || d.FetchBytes+d.ExchangeBytes < d.LowerBoundBytes {
		t.Fatalf("achieved estimate %d below lower bound %d", d.FetchBytes+d.ExchangeBytes, d.LowerBoundBytes)
	}
}

// Under a replicated layout the fused prefix's halo is already local and
// per-pass offload pays replica writeback per intermediate, so the
// pipeline's margin widens.
func TestDecidePipelineReplicatedLayoutDiscountsPrefix(t *testing.T) {
	p := Params{ElemSize: 8, StripSize: 32, FileSize: 256, Width: 4, OutputFactor: 1}
	lay := layout.NewGroupedReplicated(2, 2, 1) // halo = 1 strip = 4 elems
	spec := chainSpec()
	spec.PrefixLen = 2 // two stages fused: composed reach 4 ≤ local halo 4
	spec.PrefixBack, spec.PrefixFwd = 4, 4
	d, err := DecidePipeline(spec, p, lay, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.FetchBytes != 0 {
		t.Fatalf("replicated halo should zero the prefix fetch, got %d", d.FetchBytes)
	}
	if d.FusedStages != 2 {
		t.Fatalf("fused stages = %d, want 2 (prefix mate + reduce)", d.FusedStages)
	}
	// Only stage c exchanges now.
	if want := int64(3 * 4 * 8); d.ExchangeBytes != want {
		t.Fatalf("exchange bytes = %d, want %d", d.ExchangeBytes, want)
	}
	if d.WritebackReplicaBytes <= 0 {
		t.Fatal("replicated layout must charge writeback replicas")
	}
	if d.PerPassNetBytes <= d.PipelineNetBytes {
		t.Fatalf("per-pass (%d) should cost more than pipelined (%d): intermediates replicate",
			d.PerPassNetBytes, d.PipelineNetBytes)
	}
	if !d.Offload || !d.BeatsPerPass {
		t.Fatalf("DAS pipeline should win: %+v", d)
	}
}

func TestDecidePipelineCacheDiscountAndTailCap(t *testing.T) {
	p := pipeParams()
	lay := layout.NewRoundRobin(2)
	warm, err := DecidePipeline(chainSpec(), p, lay, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.FetchBytes != 0 {
		t.Fatalf("full cache hit should zero fetch bytes, got %d", warm.FetchBytes)
	}

	const latHigh = 500 * sim.Microsecond
	at, err := DecidePipeline(chainSpec(), p, lay, 0, 4*latHigh, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	above, err := DecidePipeline(chainSpec(), p, lay, 0, 4*latHigh+1, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	if at.PipelineNetBytes != above.PipelineNetBytes || at.Offload != above.Offload {
		t.Fatalf("×4 cap boundary diverges: %d/%v vs %d/%v",
			at.PipelineNetBytes, at.Offload, above.PipelineNetBytes, above.Offload)
	}
	cold, err := DecidePipeline(chainSpec(), p, lay, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := cold.WritebackReplicaBytes + 4*(cold.FetchBytes+cold.ExchangeBytes); at.PipelineNetBytes != want {
		t.Fatalf("capped inflation = %d, want exactly 4× moving bytes = %d", at.PipelineNetBytes, want)
	}
	if !strings.Contains(at.Reason, "inflates") {
		t.Fatalf("Reason = %q", at.Reason)
	}
}

func TestDecidePipelineValidation(t *testing.T) {
	p := pipeParams()
	lay := layout.NewRoundRobin(2)
	if _, err := DecidePipeline(PipelineSpec{}, p, lay, 0, 0, 0); err == nil {
		t.Error("empty spec accepted")
	}
	spec := chainSpec()
	spec.PrefixLen = 0
	if _, err := DecidePipeline(spec, p, lay, 0, 0, 0); err == nil {
		t.Error("zero prefix accepted")
	}
	spec.PrefixLen = 9
	if _, err := DecidePipeline(spec, p, lay, 0, 0, 0); err == nil {
		t.Error("oversized prefix accepted")
	}
}
