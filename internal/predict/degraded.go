package predict

import (
	"fmt"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/layout"
)

// AnalyzeDegraded estimates the cost of offloading while some storage
// servers are down. Each strip is assigned to its first live holder (the
// same rule the degraded execution path uses), dependence the owner's
// layout holdings do not cover counts as a whole-strip fetch, and strips
// with no live copy at all are tallied in UnservableStrips. Only the
// strip-level cost is computed — the element-level sum assumes the healthy
// placement — so the analysis is always marked Approximated.
func AnalyzeDegraded(pat features.Pattern, p Params, lay layout.Layout, down func(srv int) bool) (Analysis, error) {
	if err := p.validate(); err != nil {
		return Analysis{}, err
	}
	live := func(srv int) bool { return !down(srv) }
	lc := layout.NewLocator(p.ElemSize, p.StripSize, lay)
	offs := pat.Resolve(p.Width)
	total := p.TotalElems()

	a := Analysis{Pattern: pat, Layout: lay.Name(), Approximated: true}
	for s := int64(0); s < lc.Strips(p.FileSize); s++ {
		owner, ok := layout.FirstLiveHolder(lay, s, live)
		if !ok {
			a.UnservableStrips++
			continue
		}
		lo, hi := lc.StripBounds(s, p.FileSize)
		e0, e1 := lo/p.ElemSize, (hi+p.ElemSize-1)/p.ElemSize
		for _, t := range NeededStrips(lc, offs, e0, e1, total) {
			if t == s || layout.Holds(lay, t, owner) {
				continue
			}
			if _, ok := layout.FirstLiveHolder(lay, t, live); !ok {
				a.UnservableStrips++
				continue
			}
			a.StripFetches++
			tLo, tHi := lc.StripBounds(t, p.FileSize)
			a.StripFetchBytes += tHi - tLo
		}
	}
	a.LocalByLayout = a.StripFetches == 0 && a.UnservableStrips == 0
	return a, nil
}

// DecideDegraded applies the acceptance criterion with dead servers taken
// into account: a request whose strips (or their dependence) have no live
// copy is never offloaded — it falls back to normal I/O, which surfaces a
// typed I/O error if the data is truly gone — and otherwise the usual
// bandwidth comparison runs against the degraded fetch cost.
func DecideDegraded(pat features.Pattern, p Params, lay layout.Layout, down func(srv int) bool) (Decision, error) {
	a, err := AnalyzeDegraded(pat, p, lay, down)
	if err != nil {
		return Decision{}, err
	}
	lc := layout.NewLocator(p.ElemSize, p.StripSize, lay)
	outBytes := int64(float64(p.FileSize) * p.OutputFactor)

	d := Decision{Analysis: a}
	d.OffloadNetBytes = a.StripFetchBytes + ReplicaBytes(lc, p.FileSize) +
		int64(float64(ReplicaBytes(lc, p.FileSize))*p.OutputFactor)
	d.NormalNetBytes = p.FileSize + outBytes
	d.Offload = a.UnservableStrips == 0 && d.OffloadNetBytes < d.NormalNetBytes
	switch {
	case a.UnservableStrips > 0:
		d.Reason = fmt.Sprintf("rejected: %d strips have no live copy", a.UnservableStrips)
	case d.Offload:
		d.Reason = fmt.Sprintf("degraded offload moves %d bytes vs %d for normal I/O", d.OffloadNetBytes, d.NormalNetBytes)
	default:
		d.Reason = fmt.Sprintf("rejected: degraded offload would move %d bytes vs %d for normal I/O", d.OffloadNetBytes, d.NormalNetBytes)
	}
	return d, nil
}
