package predict

import (
	"testing"
	"testing/quick"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/layout"
)

// Geometry used throughout: 8-byte elements, 64-byte strips (8 elements
// per strip), so strip arithmetic is easy to verify by hand.
func testParams(width int, elems int64) Params {
	return Params{
		ElemSize:     8,
		StripSize:    64,
		FileSize:     elems * 8,
		Width:        width,
		OutputFactor: 1,
	}
}

func eightNeighbor() features.Pattern {
	return features.Pattern{Name: "flow-routing", Offsets: features.EightNeighbor()}
}

func TestAnalyzeIndependentPatternIsFree(t *testing.T) {
	pat := features.Pattern{Name: "scan"}
	a, err := Analyze(pat, testParams(8, 512), layout.NewRoundRobin(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.RemoteDeps != 0 || a.BWCostBytes != 0 || a.StripFetches != 0 {
		t.Errorf("independent pattern has cost: %+v", a)
	}
	if !a.LocalByLayout {
		t.Error("independent pattern not reported local")
	}
}

func TestAnalyzeRoundRobinStencilIsRemote(t *testing.T) {
	// Width 8 = one strip per row: a row's ±W neighbors are always in
	// adjacent strips on other servers under round-robin.
	a, err := Analyze(eightNeighbor(), testParams(8, 512), layout.NewRoundRobin(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.RemoteDeps == 0 || a.StripFetches == 0 {
		t.Errorf("round-robin stencil reported free: %+v", a)
	}
	if a.LocalByLayout {
		t.Error("round-robin stencil reported local")
	}
	// Every interior element has 6 of its 8 dependencies in other strips
	// (the whole rows above and below, plus same-row spills at strip
	// edges): remote fraction must be well above half.
	if a.RemoteFrac < 0.5 {
		t.Errorf("RemoteFrac = %v, want > 0.5", a.RemoteFrac)
	}
}

func TestAnalyzeGroupedReplicatedStencilIsLocal(t *testing.T) {
	// Same geometry under the improved distribution with halo 2 (the ±W±1
	// dependence spans up to 2 strip boundaries).
	lay := layout.NewGroupedReplicated(4, 4, 2)
	a, err := Analyze(eightNeighbor(), testParams(8, 1024), lay)
	if err != nil {
		t.Fatal(err)
	}
	if !a.LocalByLayout || a.RemoteDeps != 0 {
		t.Errorf("improved layout not local: %+v", a)
	}
	if a.StripFetches != 0 {
		t.Errorf("improved layout still fetches %d strips", a.StripFetches)
	}
}

func TestBWCostMatchesEq5(t *testing.T) {
	// Eq. (5): bwcost = E · Σ aj. Verify against a hand-computed stride
	// case: 8 elements per strip, stride 8 (exactly one strip), D=2,
	// round-robin. Every element's ±8 dependence is in an adjacent strip,
	// which under D=2 round-robin is always on the other server.
	pat := features.Pattern{Name: "stride", Offsets: features.Stride(8)}
	p := testParams(8, 64) // 8 strips
	a, err := Analyze(pat, p, layout.NewRoundRobin(2))
	if err != nil {
		t.Fatal(err)
	}
	// Elements 0..7 have no -8 dep (clamped), elements 56..63 no +8 dep.
	// Remaining (64-8) elements have a remote -8 dep and (64-8) a remote
	// +8 dep: Σ aj = 112.
	if a.RemoteDeps != 112 {
		t.Errorf("RemoteDeps = %d, want 112", a.RemoteDeps)
	}
	if a.BWCostBytes != 112*8 {
		t.Errorf("BWCostBytes = %d, want %d", a.BWCostBytes, 112*8)
	}
}

func TestStrideLocalWhenEq17Holds(t *testing.T) {
	// stride·E = 2 group spans with D=2... choose: E=8, strip=64, r=1,
	// D=2, stride=16 elements → stride·E=128 bytes = 2 strips = D·1
	// groups: Eq. 17 holds and the analysis must agree.
	if !Eq17(16, 8, 64, 1, 2) {
		t.Fatal("Eq17 should hold for stride 16, r=1, D=2")
	}
	pat := features.Pattern{Name: "stride", Offsets: features.Stride(16)}
	a, err := Analyze(pat, testParams(8, 512), layout.NewRoundRobin(2))
	if err != nil {
		t.Fatal(err)
	}
	if !a.LocalByLayout {
		t.Errorf("Eq17-aligned stride not local: %+v", a)
	}
}

func TestEq17(t *testing.T) {
	cases := []struct {
		stride, e, ss int64
		r, d          int
		want          bool
	}{
		{16, 8, 64, 1, 2, true},  // 128B = 2 strips = 1·D groups
		{8, 8, 64, 1, 2, false},  // 64B = 1 strip: odd number of strips
		{4, 8, 64, 1, 2, false},  // half a strip
		{32, 8, 64, 2, 2, false}, // 256B = 2 groups, 2 mod 2 = 0 → true? 2 groups = D → true
		{-16, 8, 64, 1, 2, true}, // sign-insensitive
		{48, 8, 64, 3, 4, false}, // 384B = 2 groups of 192B, 2 mod 4 ≠ 0
		{96, 8, 64, 3, 4, false}, // 4 groups, 4 mod 4 = 0 → true? recheck below
		{0, 8, 64, 1, 4, true},   // zero stride trivially local
	}
	// Fix the two commented cases by direct computation.
	cases[3].want = true // 32·8=256 = 2·(2·64); 2 mod 2 == 0
	cases[6].want = true // 96·8=768 = 4·(3·64); 4 mod 4 == 0
	for _, c := range cases {
		if got := Eq17(c.stride, c.e, c.ss, c.r, c.d); got != c.want {
			t.Errorf("Eq17(stride=%d, E=%d, ss=%d, r=%d, D=%d) = %v, want %v",
				c.stride, c.e, c.ss, c.r, c.d, got, c.want)
		}
	}
}

func TestFetchPlanRoundRobinAdjacency(t *testing.T) {
	// Width 8 (one row per strip): the ±(W+1) = ±9-element reach of the
	// last element of a strip lands two strips away, so each strip's
	// window is [s-2, s+2], all remote under round-robin with D = 4.
	lc := layout.NewLocator(8, 64, layout.NewRoundRobin(4))
	offs := eightNeighbor().Resolve(8)
	plan := FetchPlan(lc, offs, 64*8) // 8 strips
	if len(plan) != 8 {
		t.Fatalf("plan has %d strips", len(plan))
	}
	wantRemote := map[int64]int{0: 2, 1: 3, 2: 4, 3: 4, 4: 4, 5: 4, 6: 3, 7: 2}
	for _, f := range plan {
		if len(f.Remote) != wantRemote[f.Strip] {
			t.Errorf("strip %d fetches %v, want %d remote strips", f.Strip, f.Remote, wantRemote[f.Strip])
		}
		for _, r := range f.Remote {
			if r < f.Strip-2 || r > f.Strip+2 || r == f.Strip {
				t.Errorf("strip %d fetches out-of-window strip %d", f.Strip, r)
			}
		}
	}
}

func TestNeededStripsSparseStride(t *testing.T) {
	// A ±3-strip stride touches exactly {s-3, s, s+3}, not the strips in
	// between — the distinction that makes Eq. (17)-aligned strides free.
	lc := layout.NewLocator(8, 64, layout.NewRoundRobin(4))
	offs := []int64{-24, 24}                      // ±3 strips of 8 elements
	got := NeededStrips(lc, offs, 5*8, 6*8, 1024) // processing strip 5
	want := []int64{2, 5, 8}
	if len(got) != len(want) {
		t.Fatalf("NeededStrips = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NeededStrips = %v, want %v", got, want)
		}
	}
}

func TestNeededStripsClampedBoundary(t *testing.T) {
	// Processing strip 1 with a -3-strip dependence: the raw range lies
	// entirely before the file, so kernels clamp to element 0 — strip 0
	// must be in the needed set.
	lc := layout.NewLocator(8, 64, layout.NewRoundRobin(4))
	got := NeededStrips(lc, []int64{-24}, 1*8, 2*8, 1024)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("NeededStrips = %v, want [0 1]", got)
	}
	// Symmetric at the file end.
	got = NeededStrips(lc, []int64{24}, 126*8, 127*8, 1024)
	if len(got) != 2 || got[0] != 126 || got[1] != 127 {
		t.Fatalf("NeededStrips = %v, want [126 127]", got)
	}
}

func TestEq17AlignedStrideHasNoFetches(t *testing.T) {
	// Stride of exactly D strips under round-robin: dependent strips land
	// on the same server, so interior strips fetch nothing even though
	// the stride is large. Strips within the stride of a file edge still
	// fetch the boundary strip their clamped dependence reads.
	lc := layout.NewLocator(8, 64, layout.NewRoundRobin(4))
	offs := []int64{-32, 32} // ±4 strips, D = 4
	for _, f := range FetchPlan(lc, offs, 64*64) {
		if f.Strip < 4 || f.Strip >= 60 {
			continue
		}
		if len(f.Remote) > 0 {
			t.Fatalf("aligned stride fetches %v for interior strip %d", f.Remote, f.Strip)
		}
	}
}

func TestFetchPlanEmptyUnderAdequateReplication(t *testing.T) {
	lc := layout.NewLocator(8, 64, layout.NewGroupedReplicated(4, 4, 2))
	offs := eightNeighbor().Resolve(8)
	for _, f := range FetchPlan(lc, offs, 64*64) {
		if len(f.Remote) > 0 {
			t.Fatalf("strip %d still fetches %v", f.Strip, f.Remote)
		}
	}
}

func TestApproximatedMatchesExact(t *testing.T) {
	// Force the periodic path with a big file and compare its estimate
	// against the exact loop on the same geometry (the estimate ignores
	// only file-boundary clamping, so totals must agree within the
	// boundary contribution).
	pat := features.Pattern{Name: "stride", Offsets: features.Stride(4)}
	lay := layout.NewRoundRobin(3)
	lc := layout.NewLocator(8, 64, lay)

	bigElems := int64(1 << 22) // 4Mi elements × 2 offsets exceeds exactLimit
	p := testParams(8, bigElems)
	a, err := Analyze(pat, p, lay)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Approximated {
		t.Skip("geometry did not trigger approximation; adjust exactLimit")
	}
	// Exact interior rate: compute over one period by hand.
	period := int64(3) * 8 // D · elemsPerStrip
	var perPeriod int64
	base := period * 10
	total := base * 4
	for i := base; i < base+period; i++ {
		for _, off := range pat.Resolve(8) {
			if !lc.LocalDep(i, off, total) {
				perPeriod++
			}
		}
	}
	want := perPeriod * (bigElems / period)
	diff := a.RemoteDeps - want
	if diff < 0 {
		diff = -diff
	}
	// Boundary clamping affects at most 2·stride·len(offs) pairs.
	if diff > 16 {
		t.Errorf("approximation %d deviates from periodic exact %d by %d", a.RemoteDeps, want, diff)
	}
}

// TestAnalyticPeriodMatchesBruteForce validates the closed-form per-strip
// computation the periodic estimate uses against a literal per-element
// LocalDep sweep over one period, on an 8-neighbor pattern and a
// grouped-replicated layout (the hardest case: replica holdings).
func TestAnalyticPeriodMatchesBruteForce(t *testing.T) {
	// A partially-covering layout: halo 1 while the pattern needs 2, so
	// some dependencies are local and some are not.
	lay := layout.NewGroupedReplicated(3, 4, 1)
	lc := layout.NewLocator(8, 64, lay)
	offs := eightNeighbor().Resolve(8)
	bigElems := int64(1 << 21) // forces the analytic path (×8 offsets > exactLimit)
	p := testParams(8, bigElems)
	a, err := Analyze(eightNeighbor(), p, lay)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Approximated {
		t.Fatal("expected the analytic periodic path")
	}
	period := int64(3*4) * lc.ElemsPerStrip()
	base := period * 4
	total := bigElems
	var perPeriod int64
	for i := base; i < base+period; i++ {
		for _, off := range offs {
			if !lc.LocalDep(i, off, total) {
				perPeriod++
			}
		}
	}
	want := perPeriod * (bigElems / period)
	if a.RemoteDeps != want {
		t.Errorf("analytic RemoteDeps = %d, brute force %d", a.RemoteDeps, want)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	bad := []Params{
		{ElemSize: 0, StripSize: 64, FileSize: 64, Width: 8, OutputFactor: 1},
		{ElemSize: 8, StripSize: 63, FileSize: 64, Width: 8, OutputFactor: 1},
		{ElemSize: 8, StripSize: 64, FileSize: 0, Width: 8, OutputFactor: 1},
		{ElemSize: 8, StripSize: 64, FileSize: 60, Width: 8, OutputFactor: 1},
		{ElemSize: 8, StripSize: 64, FileSize: 64, Width: 0, OutputFactor: 1},
		{ElemSize: 8, StripSize: 64, FileSize: 64, Width: 8, OutputFactor: -1},
	}
	for i, p := range bad {
		if _, err := Analyze(eightNeighbor(), p, layout.NewRoundRobin(2)); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

// Property: a GroupedReplicated layout whose halo is sized by
// RequiredHalo always makes an 8-neighbor stencil fully local, for any
// server count and raster width. (No monotonicity is claimed between
// round-robin and plain grouping: grouping can break an alignment
// round-robin happened to have — e.g. a dependence of exactly D strips —
// which is precisely why the paper predicts instead of assuming.)
func TestRecommendedLayoutAlwaysLocalProperty(t *testing.T) {
	prop := func(dRaw, wRaw uint8) bool {
		d := int(dRaw%6) + 2
		width := int(wRaw%12) + 4
		p := testParams(width, int64(width)*64)
		pat := eightNeighbor()
		probe := layout.NewLocator(p.ElemSize, p.StripSize, layout.NewRoundRobin(d))
		halo := probe.RequiredHalo(pat.MaxAbsOffset(width))
		rep, err := Analyze(pat, p, layout.NewGroupedReplicated(d, 4*halo, halo))
		if err != nil {
			return false
		}
		return rep.RemoteDeps == 0 && rep.LocalByLayout && rep.StripFetches == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
