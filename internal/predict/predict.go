// Package predict implements the paper's bandwidth analysis and
// prediction core (§III-C): given an operator's dependence pattern, the
// file's striping geometry, and the layout of strips over storage servers,
// it estimates the extra data movement an offloaded (active storage)
// execution would cause and decides whether offloading beats serving the
// request as normal I/O.
//
// Two granularities are computed. The element-level cost is the paper's
// Eq. (5): bwcost = E · Σ aj, with aj = 1 when the j-th dependent element
// of an element lives on a different server. The strip-level cost models
// what a real active storage server actually transfers — whole strips
// fetched from their owners — and is the quantity the simulator's Normal
// Active Storage scheme reproduces byte for byte.
package predict

import (
	"fmt"
	"sort"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/layout"
)

// Params describes the file and system geometry a prediction runs against.
type Params struct {
	ElemSize  int64 // E, bytes per element
	StripSize int64 // bytes per strip
	FileSize  int64 // bytes in the input file
	Width     int   // raster width in elements (resolves symbolic offsets)
	// OutputFactor scales the operator's output size relative to its
	// input (1.0 for the paper's same-size kernels). It participates in
	// the normal-I/O cost: a TS client writes the output back.
	OutputFactor float64
}

// TotalElems returns the number of whole elements in the file.
func (p Params) TotalElems() int64 { return p.FileSize / p.ElemSize }

func (p Params) validate() error {
	switch {
	case p.ElemSize <= 0:
		return fmt.Errorf("predict: element size %d", p.ElemSize)
	case p.StripSize <= 0 || p.StripSize%p.ElemSize != 0:
		return fmt.Errorf("predict: strip size %d not a positive multiple of element size %d", p.StripSize, p.ElemSize)
	case p.FileSize <= 0 || p.FileSize%p.ElemSize != 0:
		return fmt.Errorf("predict: file size %d not a positive multiple of element size %d", p.FileSize, p.ElemSize)
	case p.Width <= 0:
		return fmt.Errorf("predict: width %d", p.Width)
	case p.OutputFactor < 0:
		return fmt.Errorf("predict: output factor %v", p.OutputFactor)
	}
	return nil
}

// exactLimit bounds the element×offset product for which the element-level
// sum is computed exactly; beyond it a periodic estimate is used.
const exactLimit = 1 << 22

// Analysis is the bandwidth prediction for one (pattern, layout) pair.
type Analysis struct {
	Pattern features.Pattern
	Layout  string // layout.Layout.Name() the analysis ran against

	// Element-level cost (paper Eq. (5)).
	RemoteDeps   int64   // Σ aj over all elements and offsets
	BWCostBytes  int64   // E · Σ aj
	RemoteFrac   float64 // fraction of (element, offset) pairs that are remote
	Approximated bool    // true when the periodic estimate was used

	// Strip-level cost: what an active storage run actually moves.
	StripFetches    int64 // whole-strip transfers between servers
	StripFetchBytes int64

	// UnservableStrips counts strips with no copy on any live server.
	// Always zero for the healthy-cluster Analyze; AnalyzeDegraded fills it
	// in, and any non-zero value vetoes offloading.
	UnservableStrips int64

	// LocalByLayout is true when every dependence of every element
	// resolves on its processing server (the aj ≡ 0 case; under the
	// improved distribution this is the paper's Eq. (17) holding).
	LocalByLayout bool
}

// Analyze computes the bandwidth cost of offloading the operator with the
// given dependence pattern against a concrete layout.
func Analyze(pat features.Pattern, p Params, lay layout.Layout) (Analysis, error) {
	if err := p.validate(); err != nil {
		return Analysis{}, err
	}
	lc := layout.NewLocator(p.ElemSize, p.StripSize, lay)
	offs := pat.Resolve(p.Width)
	total := p.TotalElems()

	a := Analysis{Pattern: pat, Layout: lay.Name()}
	a.RemoteDeps, a.Approximated = remoteDeps(lc, offs, total)
	a.BWCostBytes = a.RemoteDeps * p.ElemSize
	if n := total * int64(len(offs)); n > 0 {
		a.RemoteFrac = float64(a.RemoteDeps) / float64(n)
	}
	plan := FetchPlan(lc, offs, p.FileSize)
	for _, f := range plan {
		a.StripFetches += int64(len(f.Remote))
		for _, t := range f.Remote {
			lo, hi := lc.StripBounds(t, p.FileSize)
			a.StripFetchBytes += hi - lo
		}
	}
	a.LocalByLayout = a.RemoteDeps == 0
	return a, nil
}

// remoteDeps computes Σ aj. Small problems are summed exactly; large ones
// use the placement's periodicity: remote-ness of (i, off) depends only on
// i mod P in the file interior, with P = groupSpan·D elements. The
// per-period sum is computed analytically — for each strip in the period
// and each offset, the dependence image of the strip's elements is a
// contiguous range spanning at most ⌈|off|/stripElems⌉+1 strips, and the
// element count landing in each is closed-form — so one prediction costs
// O(period-strips · offsets), not O(elements · offsets).
func remoteDeps(lc layout.Locator, offs []int64, total int64) (sum int64, approx bool) {
	if total*int64(len(offs)) <= exactLimit {
		for i := int64(0); i < total; i++ {
			for _, off := range offs {
				if !lc.LocalDep(i, off, total) {
					sum++
				}
			}
		}
		return sum, false
	}
	period := periodElems(lc)
	var maxAbs int64
	for _, off := range offs {
		if off < 0 {
			off = -off
		}
		if off > maxAbs {
			maxAbs = off
		}
	}
	// Sample one period well inside the file so no dependence is clamped.
	base := ((maxAbs + period - 1) / period) * period
	if base+period+maxAbs > total {
		// File too small relative to its period for sampling: fall back to
		// the exact loop even though it is large.
		for i := int64(0); i < total; i++ {
			for _, off := range offs {
				if !lc.LocalDep(i, off, total) {
					sum++
				}
			}
		}
		return sum, false
	}
	eps := lc.ElemsPerStrip()
	baseStrip := base / eps
	var perPeriod int64
	for s := baseStrip; s < baseStrip+period/eps; s++ {
		owner := lc.Layout.Primary(s)
		e0, e1 := s*eps, (s+1)*eps
		for _, off := range offs {
			// Elements [e0, e1) map to dependence range [e0+off, e1+off),
			// which covers strips strip(e0+off) .. strip(e1-1+off). Count
			// the elements landing in each and charge the remote ones.
			lo := e0 + off
			for t := lc.Strip(lo); t*eps < e1+off; t++ {
				// Elements of the strip whose dependence falls in strip t:
				// i+off ∈ [t·eps, (t+1)·eps) ∩ [lo, e1+off).
				spanLo, spanHi := t*eps, (t+1)*eps
				if spanLo < lo {
					spanLo = lo
				}
				if spanHi > e1+off {
					spanHi = e1 + off
				}
				if spanHi <= spanLo {
					continue
				}
				if !layout.Holds(lc.Layout, t, owner) {
					perPeriod += spanHi - spanLo
				}
			}
		}
	}
	return perPeriod * (total / period), true
}

// periodElems returns the placement period in elements for the supported
// layout families.
func periodElems(lc layout.Locator) int64 {
	group := int64(1)
	switch l := lc.Layout.(type) {
	case layout.Grouped:
		group = int64(l.R)
	case layout.GroupedReplicated:
		group = int64(l.R)
	}
	return group * int64(lc.Layout.Servers()) * lc.ElemsPerStrip()
}

// StripFetch lists the remote strips the owner of one primary strip must
// transfer to process it.
type StripFetch struct {
	Strip  int64   // the primary strip being processed
	Owner  int     // its primary server
	Remote []int64 // strips to fetch from other servers, ascending
}

// NeededStrips returns, in ascending order, every strip containing an
// element the processing of owned range [e0, e1) touches: the owned
// elements themselves plus each dependence offset's image of the range,
// clamped to the file. For a dense stencil this is the contiguous halo
// window; for a sparse stride it is a handful of disjoint strips — the
// distinction that makes an Eq. (17)-aligned stride free.
func NeededStrips(lc layout.Locator, offs []int64, e0, e1, total int64) []int64 {
	mark := make(map[int64]struct{})
	addRange := func(lo, hi int64) { // element range [lo, hi], inclusive
		// Kernels clamp out-of-file dependencies to the nearest boundary
		// element, so a range that leaves the file still reads that
		// boundary element's strip.
		switch {
		case hi < 0:
			lo, hi = 0, 0
		case lo >= total:
			lo, hi = total-1, total-1
		default:
			if lo < 0 {
				lo = 0
			}
			if hi >= total {
				hi = total - 1
			}
		}
		for t := lc.Strip(lo); t <= lc.Strip(hi); t++ {
			mark[t] = struct{}{}
		}
	}
	addRange(e0, e1-1)
	for _, off := range offs {
		addRange(e0+off, e1-1+off)
	}
	out := make([]int64, 0, len(mark))
	for t := range mark {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FetchPlan computes, for every strip of the file, which other strips its
// owner lacks locally but needs to resolve the strip's dependencies. This
// is exactly the fetch sequence the simulator's active storage servers
// execute, so predicted strip traffic equals measured traffic.
func FetchPlan(lc layout.Locator, offs []int64, fileSize int64) []StripFetch {
	total := fileSize / lc.ElemSize
	strips := lc.Strips(fileSize)
	plan := make([]StripFetch, 0, strips)
	for s := int64(0); s < strips; s++ {
		owner := lc.Layout.Primary(s)
		lo, hi := lc.StripBounds(s, fileSize)
		e0, e1 := lo/lc.ElemSize, (hi+lc.ElemSize-1)/lc.ElemSize
		f := StripFetch{Strip: s, Owner: owner}
		for _, t := range NeededStrips(lc, offs, e0, e1, total) {
			if t == s || layout.Holds(lc.Layout, t, owner) {
				continue
			}
			f.Remote = append(f.Remote, t)
		}
		plan = append(plan, f)
	}
	return plan
}

// Eq17 implements the paper's offloading criterion for a pure stride
// pattern under the improved distribution (Eq. (17)):
//
//	stride·E / (r·strip_size) mod D == 0
//
// read strictly: stride·E must be a whole number of r-strip groups, and
// that number must be a multiple of D, so every element and both its
// dependencies land on the same server for every position in the file.
func Eq17(stride, elemSize, stripSize int64, r, d int) bool {
	groupBytes := int64(r) * stripSize
	bytes := stride * elemSize
	if bytes < 0 {
		bytes = -bytes
	}
	if bytes%groupBytes != 0 {
		return false
	}
	return (bytes/groupBytes)%int64(d) == 0
}
