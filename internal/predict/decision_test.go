package predict

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

func TestDecideAcceptsLocalLayout(t *testing.T) {
	lay := layout.NewGroupedReplicated(4, 8, 2)
	d, err := Decide(eightNeighbor(), testParams(8, 2048), lay)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Offload {
		t.Errorf("local layout rejected: %+v", d)
	}
	if !strings.Contains(d.Reason, "locally") {
		t.Errorf("Reason = %q", d.Reason)
	}
	// Offload cost is replica maintenance only (input was already placed;
	// the decision charges output replication).
	if d.OffloadNetBytes >= d.NormalNetBytes {
		t.Errorf("offload %d !< normal %d", d.OffloadNetBytes, d.NormalNetBytes)
	}
}

func TestDecideRejectsHostileStride(t *testing.T) {
	// Strides of 1, 2, and 3 strips are never server-aligned under D=4
	// round-robin: each strip fetches six remote strips, offload traffic
	// exceeds 2× file size, and the prediction core must reject, serving
	// the request as normal I/O.
	pat := features.Pattern{Name: "hostile", Offsets: []features.Offset{
		{Const: -24}, {Const: -16}, {Const: -8}, {Const: 8}, {Const: 16}, {Const: 24},
	}}
	d, err := Decide(pat, testParams(8, 1024), layout.NewRoundRobin(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Offload {
		t.Errorf("hostile stride accepted: offload=%d normal=%d", d.OffloadNetBytes, d.NormalNetBytes)
	}
	if !strings.Contains(d.Reason, "rejected") {
		t.Errorf("Reason = %q", d.Reason)
	}
}

func TestDecideAcceptsIndependentOnRoundRobin(t *testing.T) {
	pat := features.Pattern{Name: "scan"}
	d, err := Decide(pat, testParams(8, 1024), layout.NewRoundRobin(4))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Offload || d.OffloadNetBytes != 0 {
		t.Errorf("independent scan should offload for free: %+v", d)
	}
}

func TestReplicaBytes(t *testing.T) {
	// D=4, r=4, halo=1: 2 of every 4 strips carry one replica each → half
	// the file's bytes move as replicas.
	lc := layout.NewLocator(8, 64, layout.NewGroupedReplicated(4, 4, 1))
	fileSize := int64(64 * 16) // 16 strips
	if got := ReplicaBytes(lc, fileSize); got != fileSize/2 {
		t.Errorf("ReplicaBytes = %d, want %d", got, fileSize/2)
	}
	// Round-robin has none.
	lcRR := layout.NewLocator(8, 64, layout.NewRoundRobin(4))
	if got := ReplicaBytes(lcRR, fileSize); got != 0 {
		t.Errorf("round-robin ReplicaBytes = %d", got)
	}
}

func TestRecommendLayoutSizesHaloAndGroup(t *testing.T) {
	// Width 16 with 8-element strips: max offset W+1 = 17 elements = 136
	// bytes → halo 3 strips. Overhead budget 0.5 → r = 12.
	p := testParams(16, 4096)
	lay, ok, err := RecommendLayout(eightNeighbor(), p, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("recommendation declined for a dependent pattern")
	}
	if lay.Halo != 3 {
		t.Errorf("Halo = %d, want 3", lay.Halo)
	}
	if lay.R != 12 {
		t.Errorf("R = %d, want 12 (2·3/0.5)", lay.R)
	}
	if got := layout.OverheadRatio(lay); got > 0.5 {
		t.Errorf("overhead %v exceeds budget", got)
	}
	// The recommended layout must actually be local.
	a, err := Analyze(eightNeighbor(), p, lay)
	if err != nil {
		t.Fatal(err)
	}
	if !a.LocalByLayout {
		t.Errorf("recommended layout not local: %+v", a)
	}
}

func TestRecommendLayoutDeclinesIndependent(t *testing.T) {
	_, ok, err := RecommendLayout(features.Pattern{Name: "scan"}, testParams(8, 512), 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("independent pattern should not need a layout change")
	}
}

func TestRecommendLayoutValidation(t *testing.T) {
	p := testParams(8, 512)
	if _, _, err := RecommendLayout(eightNeighbor(), p, 0, 0.5); err == nil {
		t.Error("zero servers accepted")
	}
	if _, _, err := RecommendLayout(eightNeighbor(), p, 4, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, _, err := RecommendLayout(eightNeighbor(), p, 4, 3); err == nil {
		t.Error("budget over 2 accepted")
	}
}

func TestRecommendLayoutTightBudget(t *testing.T) {
	// A very small overhead budget forces a large group size.
	p := testParams(8, 4096)
	lay, ok, err := RecommendLayout(eightNeighbor(), p, 4, 0.1)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if layout.OverheadRatio(lay) > 0.1 {
		t.Errorf("overhead %v exceeds tight budget", layout.OverheadRatio(lay))
	}
}

func TestDecideCachedFlipsHostileStride(t *testing.T) {
	// The same hostile stride DecideRejectsHostileStride uses: cache-blind
	// it must reject, but once the halo-strip cache reports a high enough
	// hit fraction the discounted fetch term beats normal I/O and the
	// request flips to an accepted offload.
	pat := features.Pattern{Name: "hostile", Offsets: []features.Offset{
		{Const: -24}, {Const: -16}, {Const: -8}, {Const: 8}, {Const: 16}, {Const: 24},
	}}
	p := testParams(8, 1024)
	lay := layout.NewRoundRobin(4)

	cold, err := DecideCached(pat, p, lay, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Offload {
		t.Fatalf("hit fraction 0 accepted: %+v", cold)
	}
	blind, err := Decide(pat, p, lay)
	if err != nil {
		t.Fatal(err)
	}
	if cold.OffloadNetBytes != blind.OffloadNetBytes || cold.Offload != blind.Offload {
		t.Errorf("DecideCached(0) != Decide: %+v vs %+v", cold, blind)
	}

	warm, err := DecideCached(pat, p, lay, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Offload {
		t.Errorf("90%% hit rate still rejected: offload=%d normal=%d", warm.OffloadNetBytes, warm.NormalNetBytes)
	}
	if warm.CacheHitFrac != 0.9 {
		t.Errorf("CacheHitFrac = %v", warm.CacheHitFrac)
	}
	if warm.OffloadNetBytes >= cold.OffloadNetBytes {
		t.Errorf("discount did not shrink offload bytes: %d -> %d", cold.OffloadNetBytes, warm.OffloadNetBytes)
	}
	if !strings.Contains(warm.Reason, "cache") {
		t.Errorf("Reason = %q", warm.Reason)
	}
}

func TestDecideCachedClampsHitFraction(t *testing.T) {
	pat := features.Pattern{Name: "n", Offsets: []features.Offset{{Const: -8}, {Const: 8}}}
	p := testParams(8, 1024)
	lay := layout.NewRoundRobin(4)
	over, err := DecideCached(pat, p, lay, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if over.CacheHitFrac != 1 || over.OffloadNetBytes < 0 {
		t.Errorf("hitFrac 1.5 not clamped: %+v", over)
	}
	under, err := DecideCached(pat, p, lay, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	if under.CacheHitFrac != 0 {
		t.Errorf("hitFrac -0.5 not clamped: %+v", under)
	}
}

func TestDecideTailInflatesFetchTerm(t *testing.T) {
	// A marginal accept under DecideCached: warm cache flips the hostile
	// stride to offload. A congested fetch tail must flip it back, a
	// healthy tail must leave it untouched.
	pat := features.Pattern{Name: "hostile", Offsets: []features.Offset{
		{Const: -24}, {Const: -16}, {Const: -8}, {Const: 8}, {Const: 16}, {Const: 24},
	}}
	p := testParams(8, 1024)
	lay := layout.NewRoundRobin(4)
	const latHigh = 500 * sim.Microsecond

	base, err := DecideCached(pat, p, lay, 0.9)
	if err != nil || !base.Offload {
		t.Fatalf("fixture no longer marginal-accepts: %+v err=%v", base, err)
	}

	healthy, err := DecideTail(pat, p, lay, 0.9, 200*sim.Microsecond, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.OffloadNetBytes != base.OffloadNetBytes || !healthy.Offload {
		t.Errorf("healthy tail changed the decision: %+v vs %+v", healthy, base)
	}

	congested, err := DecideTail(pat, p, lay, 0.9, 4*sim.Millisecond, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	if congested.OffloadNetBytes <= base.OffloadNetBytes {
		t.Errorf("congested tail did not inflate fetch term: %d vs %d",
			congested.OffloadNetBytes, base.OffloadNetBytes)
	}
	if congested.Offload {
		t.Errorf("congested tail still offloads: %+v", congested)
	}
	if !strings.Contains(congested.Reason, "p99") {
		t.Errorf("Reason = %q", congested.Reason)
	}

	// The inflation is capped at 4x: an absurd tail prices the same as 4x.
	capped, err := DecideTail(pat, p, lay, 0.9, sim.Second, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	at4x, err := DecideTail(pat, p, lay, 0.9, 4*latHigh, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	if capped.OffloadNetBytes != at4x.OffloadNetBytes {
		t.Errorf("cap not applied: %d vs %d", capped.OffloadNetBytes, at4x.OffloadNetBytes)
	}

	// Locally-resolvable layouts never pay fetches, so the tail is moot.
	local := features.Pattern{Name: "independent", Offsets: nil}
	ld, err := DecideTail(local, p, lay, 0, sim.Second, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	if !ld.Offload {
		t.Errorf("tail rejected a fetch-free pattern: %+v", ld)
	}
}

// Pin the ×4 inflation cap boundary exactly: at p99 == 4·LatencyHigh the
// fetch term is inflated by exactly 4 (no truncation — the factor is an
// integer), and one tick above the cap engages and must price and decide
// identically.
func TestDecideTailCapBoundaryExact(t *testing.T) {
	pat := features.Pattern{Name: "hostile", Offsets: []features.Offset{
		{Const: -24}, {Const: -16}, {Const: -8}, {Const: 8}, {Const: 16}, {Const: 24},
	}}
	p := testParams(8, 1024)
	lay := layout.NewRoundRobin(4)
	const latHigh = 500 * sim.Microsecond
	const hitFrac = 0.9

	base, err := DecideCached(pat, p, lay, hitFrac)
	if err != nil {
		t.Fatal(err)
	}
	fetch := int64(float64(base.Analysis.StripFetchBytes) * (1 - hitFrac))
	if fetch <= 0 {
		t.Fatalf("fixture has no fetch bytes: %+v", base.Analysis)
	}

	at, err := DecideTail(pat, p, lay, hitFrac, 4*latHigh, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	if want := base.OffloadNetBytes + 3*fetch; at.OffloadNetBytes != want {
		t.Errorf("at p99 == 4·latHigh: OffloadNetBytes = %d, want exactly base+3·fetch = %d",
			at.OffloadNetBytes, want)
	}
	if wantOffload := at.OffloadNetBytes < at.NormalNetBytes; at.Offload != wantOffload {
		t.Errorf("verdict %v inconsistent with exact 4× pricing (%d vs %d)",
			at.Offload, at.OffloadNetBytes, at.NormalNetBytes)
	}

	just, err := DecideTail(pat, p, lay, hitFrac, 4*latHigh+1, latHigh)
	if err != nil {
		t.Fatal(err)
	}
	if just.OffloadNetBytes != at.OffloadNetBytes || just.Offload != at.Offload {
		t.Errorf("one tick above the cap diverges: %d/%v vs %d/%v at the boundary",
			just.OffloadNetBytes, just.Offload, at.OffloadNetBytes, at.Offload)
	}
}

// The inflated fetch term of a big file under a coarse (seconds-scale)
// latency threshold overflows fetch·num in 64 bits; the cross-multiplied
// compare must stay exact instead of wrapping negative and silently
// re-accepting the offload.
func TestDecideTailHugeFetchDoesNotOverflow(t *testing.T) {
	// ±9 strips of reach: never server-aligned under D=8 round-robin.
	pat := features.Pattern{Name: "hostile", Offsets: []features.Offset{
		{Const: -9 * 131072}, {Const: 9 * 131072},
	}}
	p := Params{
		ElemSize:     8,
		StripSize:    1 << 20, // 1 MiB strips
		FileSize:     1 << 40, // 1 TiB file
		Width:        1 << 20,
		OutputFactor: 1,
	}
	lay := layout.NewRoundRobin(8)
	base, err := DecideCached(pat, p, lay, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Offload {
		t.Fatalf("fixture no longer marginal-accepts before inflation: %+v", base)
	}
	d, err := DecideTail(pat, p, lay, 0, 4*sim.Second, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d.Offload {
		t.Errorf("4× inflation of a ~2 TiB fetch term must reject; a wrapped product keeps it accepted: %+v", d)
	}
	if d.OffloadNetBytes < base.OffloadNetBytes {
		t.Errorf("inflated bytes went backwards (wrap): %d < %d", d.OffloadNetBytes, base.OffloadNetBytes)
	}
}
