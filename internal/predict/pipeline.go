package predict

import (
	"fmt"
	"math/bits"

	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

// PipelineStage describes one DAG node, in topological order, for
// whole-pipeline pricing: its own dependence reach against its parents'
// output (not the composed reach against the DAG input) and whether it is
// the terminal reduce.
type PipelineStage struct {
	Name string
	// Back and Fwd are the stage's own dependence reach in elements
	// against its parent rasters.
	Back, Fwd int64
	// Reduce marks the terminal aggregation (no raster output).
	Reduce bool
}

// PipelineSpec is the execution shape the pipeline planner settled on,
// handed to the predictor for pricing. The planner owns the fusion rule;
// the predictor prices the resulting schedule.
type PipelineSpec struct {
	// Stages in topological order.
	Stages []PipelineStage
	// PrefixLen is the number of leading stages fused into the first
	// dispatch, which reads the input file with a deep halo instead of
	// exchanging intermediate bands.
	PrefixLen int
	// PrefixBack and PrefixFwd are the composed (Minkowski-summed) reach
	// of the fused prefix against the DAG input.
	PrefixBack, PrefixFwd int64
	// DAGBack and DAGFwd are the composed reach of the whole DAG against
	// the input — the per-direction maxima over root-to-sink paths that
	// the I/O lower bound is built from.
	DAGBack, DAGFwd int64
}

// PipelineDecision prices a whole-DAG pushdown against running the same
// DAG one kernel per pass.
type PipelineDecision struct {
	// Stages is the DAG size; FusedStages counts stages that needed no
	// exchange round of their own (fused into the prefix, or zero-reach).
	Stages, FusedStages int
	// FetchBytes is the first dispatch's remote input-halo traffic after
	// the cache-hit discount; ExchangeBytes the summed per-stage
	// intermediate boundary bands; WritebackReplicaBytes the final
	// output's replica maintenance.
	FetchBytes, ExchangeBytes, WritebackReplicaBytes int64
	// PipelineNetBytes is the pushdown's predicted interconnect traffic
	// (fetch + exchange, tail-inflated, plus writeback replicas).
	PipelineNetBytes int64
	// PerPassNetBytes prices the per-pass offloaded alternative: each
	// stage's own halo fetch plus full replica writeback of every
	// intermediate raster.
	PerPassNetBytes int64
	// NormalNetBytes prices the traditional-storage alternative: every
	// pass ships the raster to a compute node and back.
	NormalNetBytes int64
	// LowerBoundBytes is the composed-offset halo minimum for this DAG
	// under this strip assignment — the floor achieved halo traffic is
	// reported against.
	LowerBoundBytes int64
	// CacheHitFrac is the byte hit fraction the fetch term was discounted
	// by; TailNum/TailDen the (capped) tail inflation applied to moving
	// bytes, 1/1 when the tail is healthy.
	CacheHitFrac     float64
	TailNum, TailDen uint64
	// Offload accepts the pushdown over traditional storage;
	// BeatsPerPass additionally ranks it under the per-pass offload.
	Offload, BeatsPerPass bool
	Reason                string
}

// cutPositions returns the element index of every assignment boundary:
// positions where consecutive strips have different primary servers.
// Halo traffic — and its lower bound — crosses exactly these cuts.
func cutPositions(lc layout.Locator, fileSize int64) []int64 {
	var cuts []int64
	n := lc.Strips(fileSize)
	for s := int64(1); s < n; s++ {
		if lc.Layout.Primary(s) != lc.Layout.Primary(s-1) {
			lo, _ := lc.StripBounds(s, fileSize)
			cuts = append(cuts, lo/lc.ElemSize)
		}
	}
	return cuts
}

// bandBytesAcrossCuts returns the bytes of a (back, fwd)-reach band
// crossing every cut, clamped exactly at the file edges: a cut at element
// c moves min(back, c) elements leftward and min(fwd, total-c) rightward.
func bandBytesAcrossCuts(cuts []int64, total, elemSize, back, fwd int64) int64 {
	var bytes int64
	for _, c := range cuts {
		b, f := back, fwd
		if b > c {
			b = c
		}
		if f > total-c {
			f = total - c
		}
		bytes += (b + f) * elemSize
	}
	return bytes
}

// PipelineLowerBound returns the composed-offset halo minimum for a DAG
// of the given composed reach under the layout's strip assignment: every
// assignment cut must move at least the dependence cone's width in each
// direction, clamped at the file edges. Replica-prepaid halos (DAS
// layouts) can beat this bound at run time — the bound prices what must
// cross cuts during execution for an unreplicated placement.
func PipelineLowerBound(p Params, lay layout.Layout, dagBack, dagFwd int64) (int64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	lc := layout.NewLocator(p.ElemSize, p.StripSize, lay)
	cuts := cutPositions(lc, p.FileSize)
	return bandBytesAcrossCuts(cuts, p.TotalElems(), p.ElemSize, dagBack, dagFwd), nil
}

// LocalHaloElems returns how many elements of halo each assignment run
// already holds locally per side: grouped-replicated layouts replicate
// Halo whole strips across group boundaries, every other layout none.
func LocalHaloElems(lay layout.Layout, lc layout.Locator) int64 {
	if gr, ok := lay.(layout.GroupedReplicated); ok {
		return int64(gr.Halo) * lc.ElemsPerStrip()
	}
	return 0
}

// DecidePipeline prices a whole operator DAG for server-side pushdown and
// decides it in one shot, instead of one accept/reject per kernel: the
// fused prefix's input halo (discounted by the cache hit fraction), each
// later stage's intermediate boundary bands, and the final writeback's
// replica maintenance, against both the per-pass offload (which writes
// every intermediate raster back with replicas) and traditional storage
// (which ships every raster to a compute node and back). A congested
// fetch tail inflates the moving bytes by p99/latHigh, capped at 4× and
// compared cross-multiplied like DecideTail.
func DecidePipeline(spec PipelineSpec, p Params, lay layout.Layout, hitFrac float64, p99, latHigh sim.Time) (PipelineDecision, error) {
	if err := p.validate(); err != nil {
		return PipelineDecision{}, err
	}
	if len(spec.Stages) == 0 {
		return PipelineDecision{}, fmt.Errorf("predict: pipeline with no stages")
	}
	if spec.PrefixLen < 1 || spec.PrefixLen > len(spec.Stages) {
		return PipelineDecision{}, fmt.Errorf("predict: fused prefix %d out of [1,%d]", spec.PrefixLen, len(spec.Stages))
	}
	if hitFrac < 0 {
		hitFrac = 0
	}
	if hitFrac > 1 {
		hitFrac = 1
	}
	lc := layout.NewLocator(p.ElemSize, p.StripSize, lay)
	cuts := cutPositions(lc, p.FileSize)
	total := p.TotalElems()
	halo := LocalHaloElems(lay, lc)

	d := PipelineDecision{Stages: len(spec.Stages), CacheHitFrac: hitFrac, TailNum: 1, TailDen: 1}

	// First dispatch: the fused prefix's composed halo, minus what the
	// layout already replicated locally, fetched at band granularity.
	fb := spec.PrefixBack - halo
	if fb < 0 {
		fb = 0
	}
	ff := spec.PrefixFwd - halo
	if ff < 0 {
		ff = 0
	}
	rawFetch := bandBytesAcrossCuts(cuts, total, p.ElemSize, fb, ff)
	d.FetchBytes = int64(float64(rawFetch) * (1 - hitFrac))

	// Later rounds: each unfused stage pulls its own-reach band across
	// every cut. Zero-reach stages (reduces, element-wise combines) never
	// pull and count as fused.
	d.FusedStages = spec.PrefixLen - 1
	for i, st := range spec.Stages {
		if i < spec.PrefixLen {
			continue
		}
		if st.Back == 0 && st.Fwd == 0 {
			d.FusedStages++
			continue
		}
		d.ExchangeBytes += bandBytesAcrossCuts(cuts, total, p.ElemSize, st.Back, st.Fwd)
	}

	outBytes := int64(float64(p.FileSize) * p.OutputFactor)
	d.WritebackReplicaBytes = int64(float64(ReplicaBytes(lc, p.FileSize)) * p.OutputFactor)

	// Alternatives. Per-pass offload: every stage fetches its own halo
	// beyond the local coverage and every raster-producing stage pays
	// replica writeback of its output. Traditional storage: every pass
	// ships the raster down and the result back (the reduce returns only
	// an aggregate).
	gridStages := 0
	for _, st := range spec.Stages {
		if st.Reduce {
			continue
		}
		gridStages++
		b := st.Back - halo
		if b < 0 {
			b = 0
		}
		f := st.Fwd - halo
		if f < 0 {
			f = 0
		}
		d.PerPassNetBytes += bandBytesAcrossCuts(cuts, total, p.ElemSize, b, f)
		d.NormalNetBytes += p.FileSize + outBytes
	}
	d.PerPassNetBytes += int64(gridStages) * d.WritebackReplicaBytes
	if spec.Stages[len(spec.Stages)-1].Reduce {
		d.NormalNetBytes += p.FileSize // the reduce pass still reads the raster
	}

	lb, err := PipelineLowerBound(p, lay, spec.DAGBack, spec.DAGFwd)
	if err != nil {
		return PipelineDecision{}, err
	}
	d.LowerBoundBytes = lb

	// Tail inflation on the moving (fetch + exchange) bytes, verdicts via
	// exact cross-multiplication.
	num, den := uint64(1), uint64(1)
	if latHigh > 0 && p99 > latHigh {
		num, den = uint64(p99), uint64(latHigh)
		if num > 4*den {
			num = 4 * den
		}
	}
	d.TailNum, d.TailDen = num, den
	moving := uint64(d.FetchBytes + d.ExchangeBytes)
	fixed := uint64(d.WritebackReplicaBytes)
	infHi, infLo := bits.Mul64(moving, num)
	d.PipelineNetBytes = d.WritebackReplicaBytes + div128(infHi, infLo, den)

	lhsHi, lhsLo := mulAdd128(moving, num, fixed, den)
	normHi, normLo := bits.Mul64(uint64(d.NormalNetBytes), den)
	perHi, perLo := bits.Mul64(uint64(d.PerPassNetBytes), den)
	d.Offload = lhsHi < normHi || (lhsHi == normHi && lhsLo < normLo)
	// A network-byte tie prefers the pushdown: per-pass additionally
	// writes and re-reads every intermediate raster on disk, which the
	// interconnect model does not price.
	d.BeatsPerPass = lhsHi < perHi || (lhsHi == perHi && lhsLo <= perLo)

	switch {
	case !d.Offload:
		d.Reason = fmt.Sprintf("rejected: pushdown would move %d bytes vs %d for normal I/O", d.PipelineNetBytes, d.NormalNetBytes)
	case !d.BeatsPerPass:
		d.Reason = fmt.Sprintf("pushdown moves %d bytes but per-pass offload moves %d; prefer per-pass", d.PipelineNetBytes, d.PerPassNetBytes)
	default:
		d.Reason = fmt.Sprintf("pushdown moves %d bytes vs %d per-pass and %d normal (%d-stage DAG, %d fused, lower bound %d)",
			d.PipelineNetBytes, d.PerPassNetBytes, d.NormalNetBytes, d.Stages, d.FusedStages, d.LowerBoundBytes)
	}
	if num != den {
		d.Reason += fmt.Sprintf(" — fetch p99 %v vs threshold %v inflates moving bytes %.2f×", p99, latHigh, float64(num)/float64(den))
	}
	return d, nil
}
