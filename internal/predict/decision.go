package predict

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

// mulAdd128 returns a·b + c·d as a 128-bit value.
func mulAdd128(a, b, c, d uint64) (hi, lo uint64) {
	h1, l1 := bits.Mul64(a, b)
	h2, l2 := bits.Mul64(c, d)
	var carry uint64
	lo, carry = bits.Add64(l1, l2, 0)
	hi = h1 + h2 + carry
	return hi, lo
}

// div128 returns (hi·2^64 + lo)/den truncated, saturating at MaxInt64.
func div128(hi, lo, den uint64) int64 {
	if den == 0 || hi >= den {
		return math.MaxInt64
	}
	quo, _ := bits.Div64(hi, lo, den)
	if quo > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(quo)
}

// Decision is the outcome of the DAS workflow's accept/reject step
// (Fig. 3): whether to serve a request as active storage or as normal I/O.
type Decision struct {
	Analysis Analysis
	// Offload is true when active storage is predicted to move fewer
	// bytes over the interconnect than normal I/O.
	Offload bool
	// OffloadNetBytes is the predicted server↔server traffic of an
	// offloaded run: dependent-strip fetches plus replica maintenance for
	// the output file under the file's layout.
	OffloadNetBytes int64
	// NormalNetBytes is the client↔server traffic of serving the request
	// as normal I/O: the input read to a compute node plus the output
	// written back.
	NormalNetBytes int64
	// CacheHitFrac is the byte hit fraction the dependent-fetch estimate
	// was discounted by (0 for the cache-blind decision).
	CacheHitFrac float64
	// Reason summarizes the decision for logs and the dasadvise tool.
	Reason string
}

// Decide runs the full prediction and applies the paper's acceptance
// criterion: offload if and only if it is predicted to consume less
// bandwidth than normal processing.
func Decide(pat features.Pattern, p Params, lay layout.Layout) (Decision, error) {
	return DecideCached(pat, p, lay, 0)
}

// DecideCached is Decide with the halo-strip cache in the loop: the
// dependent-fetch term of Eq. (13) is discounted by hitFrac, the byte hit
// fraction the cache subsystem observed for this file. Dependent bytes
// expected to be served from cache never cross the interconnect, so a
// request the cache-blind model rejects can become an accepted offload
// once the cache warms. hitFrac outside [0,1] is clamped; 0 reproduces
// Decide exactly.
func DecideCached(pat features.Pattern, p Params, lay layout.Layout, hitFrac float64) (Decision, error) {
	if hitFrac < 0 {
		hitFrac = 0
	}
	if hitFrac > 1 {
		hitFrac = 1
	}
	a, err := Analyze(pat, p, lay)
	if err != nil {
		return Decision{}, err
	}
	lc := layout.NewLocator(p.ElemSize, p.StripSize, lay)
	outBytes := int64(float64(p.FileSize) * p.OutputFactor)

	d := Decision{Analysis: a, CacheHitFrac: hitFrac}
	fetchBytes := int64(float64(a.StripFetchBytes) * (1 - hitFrac))
	d.OffloadNetBytes = fetchBytes + ReplicaBytes(lc, p.FileSize) +
		int64(float64(ReplicaBytes(lc, p.FileSize))*p.OutputFactor)
	d.NormalNetBytes = p.FileSize + outBytes
	d.Offload = d.OffloadNetBytes < d.NormalNetBytes
	switch {
	case a.LocalByLayout:
		d.Reason = "all dependencies resolve locally under " + a.Layout
	case d.Offload && hitFrac > 0:
		d.Reason = fmt.Sprintf("offload moves %d bytes vs %d for normal I/O (dependent fetches discounted by %.0f%% cache hits)",
			d.OffloadNetBytes, d.NormalNetBytes, 100*hitFrac)
	case d.Offload:
		d.Reason = fmt.Sprintf("offload moves %d bytes vs %d for normal I/O", d.OffloadNetBytes, d.NormalNetBytes)
	default:
		d.Reason = fmt.Sprintf("rejected: offload would move %d bytes vs %d for normal I/O", d.OffloadNetBytes, d.NormalNetBytes)
	}
	return d, nil
}

// DecideTail refines DecideCached with the observed cluster fetch-latency
// tail. The byte model prices a dependent fetch as if every fetch cost
// the same; when the controller's measured tail percentile (typically
// p99) sits above the scale-up threshold, fetches are congested and their
// effective cost scales with how far the tail overshoots. The fetch term
// is inflated by p99/latHigh — capped at 4× so a single pathological
// window cannot veto offload forever — and the accept/reject verdict is
// recomputed. The scaling is integer cross-multiplication; floats appear
// only in the human-readable Reason.
func DecideTail(pat features.Pattern, p Params, lay layout.Layout, hitFrac float64, p99, latHigh sim.Time) (Decision, error) {
	d, err := DecideCached(pat, p, lay, hitFrac)
	if err != nil || latHigh <= 0 || p99 <= latHigh || d.Analysis.LocalByLayout {
		return d, err
	}
	num, den := uint64(p99), uint64(latHigh)
	if num > 4*den {
		num = 4 * den // cap the inflation at 4×
	}
	fetchBytes := int64(float64(d.Analysis.StripFetchBytes) * (1 - d.CacheHitFrac))
	// The verdict compares base + fetch·num/den against the normal-I/O
	// bytes. Dividing first truncates up to den-1 bytes off the inflated
	// term — exactly at the cap boundary that can flip accept/reject — so
	// cross-multiply both sides by den instead and compare in 128 bits,
	// which also keeps fetch·num from overflowing int64 for large files
	// with a coarse latency threshold.
	base := uint64(d.OffloadNetBytes - fetchBytes)
	lhsHi, lhsLo := mulAdd128(uint64(fetchBytes), num, base, den)
	rhsHi, rhsLo := bits.Mul64(uint64(d.NormalNetBytes), den)
	d.Offload = lhsHi < rhsHi || (lhsHi == rhsHi && lhsLo < rhsLo)
	// The reported byte total keeps the rounded-down form; only the
	// verdict needs the exact compare.
	infHi, infLo := bits.Mul64(uint64(fetchBytes), num)
	d.OffloadNetBytes += div128(infHi, infLo, den) - fetchBytes
	verdict := "offload still wins"
	if !d.Offload {
		verdict = "rejected: tail congestion tips the balance to normal I/O"
	}
	d.Reason = fmt.Sprintf("%s — observed fetch p99 %v vs threshold %v inflates the fetch term %.2f× (%d vs %d bytes)",
		verdict, p99, latHigh, float64(num)/float64(den), d.OffloadNetBytes, d.NormalNetBytes)
	return d, nil
}

// ReplicaBytes returns the bytes a replica-maintaining layout moves
// between servers to place one copy of every replicated strip when a file
// of the given size is written or migrated.
func ReplicaBytes(lc layout.Locator, fileSize int64) int64 {
	var total int64
	for s := int64(0); s < lc.Strips(fileSize); s++ {
		lo, hi := lc.StripBounds(s, fileSize)
		total += int64(len(lc.Layout.Replicas(s))) * (hi - lo)
	}
	return total
}

// RecommendLayout chooses the improved data distribution (§III-D) for an
// operator: the halo is the smallest that makes the pattern's farthest
// dependence local, and the group size r is the smallest keeping the
// replication capacity overhead 2·halo/r within maxOverhead. It returns
// ok = false when the pattern has no dependence, in which case the default
// round-robin layout is already optimal and no change is recommended.
func RecommendLayout(pat features.Pattern, p Params, d int, maxOverhead float64) (layout.GroupedReplicated, bool, error) {
	if err := p.validate(); err != nil {
		return layout.GroupedReplicated{}, false, err
	}
	if d <= 0 {
		return layout.GroupedReplicated{}, false, fmt.Errorf("predict: server count %d", d)
	}
	if maxOverhead <= 0 || maxOverhead > 2 {
		return layout.GroupedReplicated{}, false, fmt.Errorf("predict: overhead budget %v out of (0,2]", maxOverhead)
	}
	maxAbs := pat.MaxAbsOffset(p.Width)
	if maxAbs == 0 {
		return layout.GroupedReplicated{}, false, nil
	}
	probe := layout.NewLocator(p.ElemSize, p.StripSize, layout.NewRoundRobin(d))
	halo := probe.RequiredHalo(maxAbs)
	// Smallest r with 2·halo/r ≤ maxOverhead, but never smaller than the
	// halo itself (a group must contain the strips it replicates).
	r := int(float64(2*halo)/maxOverhead + 0.9999999)
	if float64(2*halo)/float64(r) > maxOverhead {
		r++
	}
	if r < halo {
		r = halo
	}
	return layout.NewGroupedReplicated(d, r, halo), true, nil
}
