.PHONY: tier1 extended bench-smoke

# Tier-1 gate: must stay green on every PR.
tier1:
	go build ./...
	go test ./...

# Extended gate: vet + race on top of tier-1.
extended: tier1
	go vet ./...
	go test -race ./...

# Bench smoke: a short cache experiment end to end (writes BENCH_cache.json
# from the reduced sweep) plus the cache subsystem under the race detector.
bench-smoke:
	go run ./cmd/dasbench -quick -cache -cache-rounds 2 -json BENCH_cache_smoke.json
	go test -race ./internal/cache/...
