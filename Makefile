.PHONY: tier1 extended lint lint-fix-check bench-smoke

# Tier-1 gate: must stay green on every PR.
tier1:
	go build ./...
	go test ./...

# Determinism/pooling analyzer suite (cmd/daslint), both ways it deploys:
# standalone over the whole module (the only mode that runs the
# interprocedural transfer/replies analyzers and the stale-directive
# check), then through the `go vet -vettool` protocol, which additionally
# covers _test.go files with the per-package analyzers.
lint:
	go run ./cmd/daslint ./...
	go build -o "$$(go env GOTMPDIR 2>/dev/null || echo /tmp)/daslint-vettool" ./cmd/daslint
	go vet -vettool="$$(go env GOTMPDIR 2>/dev/null || echo /tmp)/daslint-vettool" ./...

# Machine-readable lint pass: asserts the module is finding-free via the
# -json output (any JSON line on stdout is a finding). CI consumes this;
# locally it is the quick "is my suppression correct" check.
lint-fix-check:
	@out="$$(go run ./cmd/daslint -json ./... 2>&1)"; \
	if [ -n "$$out" ]; then \
		echo "$$out"; \
		echo "lint-fix-check: findings remain (fix them or annotate with //das:allow/-transfer -- reason)"; \
		exit 1; \
	fi; \
	echo "lint-fix-check: clean"

# Extended gate: vet + daslint (both modes) + race on top of tier-1.
extended: tier1 lint lint-fix-check
	go vet ./...
	go test -race ./...

# Bench smoke: short cache, restripe, and p99-controller experiments end
# to end (reduced sweep, JSON artifacts) plus the adaptive subsystems
# under the race detector.
bench-smoke:
	go run ./cmd/dasbench -quick -cache -cache-rounds 2 -json BENCH_cache_smoke.json
	go run ./cmd/dasbench -quick -restripe -restripe-rounds 2 -json BENCH_restripe_smoke.json
	go run ./cmd/dasbench -quick -p99 -p99-rounds 7 -json BENCH_p99_smoke.json
	go run ./cmd/dasbench -scale -smoke -json BENCH_scale_smoke.json
	go run ./cmd/dasbench -quick -tenants -smoke -json BENCH_tenants_smoke.json
	go run ./cmd/dasbench -quick -pipeline -smoke -json BENCH_pipeline_smoke.json
	go test -race ./internal/control/... ./internal/cache/... ./internal/restripe/... ./internal/tenants/... ./internal/pipeline/...
