.PHONY: tier1 extended bench-smoke

# Tier-1 gate: must stay green on every PR.
tier1:
	go build ./...
	go test ./...

# Extended gate: vet + race on top of tier-1.
extended: tier1
	go vet ./...
	go test -race ./...

# Bench smoke: short cache and restripe experiments end to end (reduced
# sweep, JSON artifacts) plus both subsystems under the race detector.
bench-smoke:
	go run ./cmd/dasbench -quick -cache -cache-rounds 2 -json BENCH_cache_smoke.json
	go run ./cmd/dasbench -quick -restripe -restripe-rounds 2 -json BENCH_restripe_smoke.json
	go test -race ./internal/cache/... ./internal/restripe/...
