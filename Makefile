.PHONY: tier1 extended lint bench-smoke

# Tier-1 gate: must stay green on every PR.
tier1:
	go build ./...
	go test ./...

# Determinism/pooling analyzer suite (cmd/daslint) over the whole module.
lint:
	go run ./cmd/daslint ./...

# Extended gate: vet + daslint + race on top of tier-1.
extended: tier1 lint
	go vet ./...
	go test -race ./...

# Bench smoke: short cache, restripe, and p99-controller experiments end
# to end (reduced sweep, JSON artifacts) plus the adaptive subsystems
# under the race detector.
bench-smoke:
	go run ./cmd/dasbench -quick -cache -cache-rounds 2 -json BENCH_cache_smoke.json
	go run ./cmd/dasbench -quick -restripe -restripe-rounds 2 -json BENCH_restripe_smoke.json
	go run ./cmd/dasbench -quick -p99 -p99-rounds 7 -json BENCH_p99_smoke.json
	go run ./cmd/dasbench -scale -smoke -json BENCH_scale_smoke.json
	go run ./cmd/dasbench -quick -tenants -smoke -json BENCH_tenants_smoke.json
	go run ./cmd/dasbench -quick -pipeline -smoke -json BENCH_pipeline_smoke.json
	go test -race ./internal/control/... ./internal/cache/... ./internal/restripe/... ./internal/tenants/... ./internal/pipeline/...
