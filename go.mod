module github.com/hpcio/das

go 1.22
