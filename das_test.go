package das_test

import (
	"fmt"
	"testing"

	das "github.com/hpcio/das"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	sys, err := das.NewSystem(das.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	dem := das.Terrain(512, 96, 42)
	lay, err := sys.PlanLayout("flow-routing", dem.W, das.ElemSize, 4096, dem.SizeBytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestGrid("dem", dem, lay, 4096); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Execute(das.Request{Op: "flow-routing", Input: "dem", Output: "dirs", Scheme: das.DAS})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Offloaded || rep.Stats.RemoteFetches != 0 {
		t.Errorf("expected free local offload: %+v", rep)
	}
	got, err := sys.FetchGrid("dirs")
	if err != nil {
		t.Fatal(err)
	}
	k, ok := das.DefaultKernels().Lookup("flow-routing")
	if !ok {
		t.Fatal("flow-routing missing from default registry")
	}
	if !got.Equal(das.ApplyKernel(k, dem)) {
		t.Error("public API run differs from sequential reference")
	}
}

func TestPublicReduceAPI(t *testing.T) {
	sys, err := das.NewSystem(das.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	img := das.Image(512, 64, 7, 0.02)
	if _, err := sys.IngestGrid("img", img, das.RoundRobin(sys.FS.Servers()), 4096); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Reduce(das.ReduceRequest{Op: "stats", Input: "img", Scheme: das.DAS})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Offloaded {
		t.Error("reduction not offloaded")
	}
	red, _ := sys.Reducers.Lookup("stats")
	want := das.ReduceAll(red, img)
	// Partials merge in server order, so the float sum can differ from the
	// sequential order in the last bits.
	if d := das.Mean(rep.Result) - das.Mean(want); d > 1e-9 || d < -1e-9 {
		t.Errorf("mean %v != %v", das.Mean(rep.Result), das.Mean(want))
	}
	if das.StdDev(rep.Result) <= 0 {
		t.Error("stddev should be positive for a speckled image")
	}
}

func TestPipelinePublicAPI(t *testing.T) {
	sys, err := das.NewSystem(das.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	dem := das.Terrain(512, 96, 9)
	lay, err := sys.PlanLayout("flow-routing", dem.W, das.ElemSize, 4096, dem.SizeBytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestGrid("dem", dem, lay, 4096); err != nil {
		t.Fatal(err)
	}
	ops := []string{"flow-routing", "flow-accumulation"}
	reports, err := sys.ExecutePipeline(das.DAS, "dem", ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || !reports[1].Offloaded {
		t.Errorf("pipeline reports: %+v", reports)
	}
}

// ExampleEq17 demonstrates the paper's closed-form locality criterion for
// stride patterns: a stride of exactly D strip-groups lands every
// dependence on its element's own server.
func ExampleEq17() {
	const (
		elemSize  = 8
		stripSize = 64 * 1024
		r         = 1
		servers   = 12
	)
	elemsPerStrip := int64(stripSize / elemSize)
	for _, stride := range []int64{elemsPerStrip, servers * elemsPerStrip} {
		fmt.Printf("stride %d elements: local=%v\n",
			stride, das.Eq17(stride, elemSize, stripSize, r, servers))
	}
	// Output:
	// stride 8192 elements: local=false
	// stride 98304 elements: local=true
}

// ExampleDecide runs the bandwidth prediction core standalone: the same
// 8-neighbor operator is rejected under round-robin placement and
// accepted under the improved distribution.
func ExampleDecide() {
	k, _ := das.DefaultKernels().Lookup("flow-routing")
	params := das.PredictParams{
		ElemSize:     das.ElemSize,
		StripSize:    das.DefaultStripSize,
		FileSize:     24 << 20,
		Width:        8192,
		OutputFactor: 1,
	}
	rr, _ := das.Decide(das.Pattern(k), params, das.RoundRobin(12))
	improved, _ := das.Decide(das.Pattern(k), params, das.GroupedReplicated(12, 8, 2))
	fmt.Printf("round-robin: offload=%v\n", rr.Offload)
	fmt.Printf("improved:    offload=%v (local=%v)\n",
		improved.Offload, improved.Analysis.LocalByLayout)
	// Output:
	// round-robin: offload=false
	// improved:    offload=true (local=true)
}
