// Package das is a library-level reproduction of "Dynamic Active Storage
// for High Performance I/O" (Chen & Chen, ICPP 2012): an active storage
// architecture for parallel file systems that understands the data
// dependence of offloaded operations.
//
// The paper's observation is that offloading a stencil-style kernel (flow
// routing, flow accumulation, Gaussian filtering — anything that reads a
// neighborhood around each element) to storage servers backfires under
// the default round-robin striping: the neighbors of elements near strip
// boundaries live on other servers, so "active" storage generates more
// traffic than it avoids. DAS fixes this with three mechanisms, all
// implemented here:
//
//   - Kernel Features: per-operator dependence patterns expressed as
//     signed element offsets (features package, §III-B record format).
//   - A bandwidth prediction core that locates every dependent element
//     under the file's actual layout and accepts an offload request only
//     when it beats normal I/O (Eqs. (1)–(5), (11)–(13), (17)).
//   - An improved data distribution that groups r successive strips per
//     server and replicates group-boundary strips to the adjacent
//     servers, making dependence local at a capacity cost of 2·halo/r.
//
// Because the paper's platform was a 60-node Lustre allocation, this
// reproduction runs on a deterministic discrete-event simulation of a
// cluster — compute nodes, storage nodes with disks, NIC-level network
// contention, and a PVFS2-like striped parallel file system — while the
// kernels process real bytes: every scheme's output is verified against a
// sequential reference. See DESIGN.md for the substitution argument and
// EXPERIMENTS.md for measured-vs-paper results.
//
// # Quick start
//
//	sys, _ := das.NewSystem(das.DefaultClusterConfig())
//	dem := das.Terrain(8192, 384, 42)
//	lay, _ := sys.PlanLayout("flow-routing", dem.W, das.ElemSize, 64<<10, dem.SizeBytes(), 0)
//	sys.IngestGrid("dem", dem, lay, 64<<10)
//	rep, _ := sys.Execute(das.Request{
//		Op: "flow-routing", Input: "dem", Output: "dirs", Scheme: das.DAS,
//	})
//	fmt.Println(rep.ExecTime, rep.Offloaded)
//
// The cmd/ tools expose the same machinery from the command line:
// dasbench regenerates every figure and table of the paper's evaluation,
// dasadvise runs the prediction core standalone, dasctl prints placement
// maps and fetch plans, and dasgen writes workload rasters.
package das

import (
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/experiments"
	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// System is a deployed DAS platform: simulated cluster, parallel file
// system, active storage service, and the kernel/feature registries.
type System = core.System

// Request submits one operation to a System; Report is its outcome.
type (
	Request = core.Request
	Report  = core.Report
)

// Scheme selects the execution strategy of a Request.
type Scheme = core.Scheme

// The paper's three evaluation schemes.
const (
	// TS is Traditional Storage: data moves to compute nodes.
	TS = core.TS
	// NAS is Normal Active Storage: blind offloading over round-robin
	// placement, as existing active storage systems behave.
	NAS = core.NAS
	// DAS is Dynamic Active Storage: dependence-aware layout plus the
	// accept/reject prediction core.
	DAS = core.DAS
)

// ClusterConfig parameterizes the simulated platform.
type ClusterConfig = cluster.Config

// ElemSize is the on-disk size of one raster element (bytes).
const ElemSize = grid.ElemSize

// DefaultStripSize is the PVFS2 default strip size the paper quotes.
const DefaultStripSize = 64 * 1024

// NewSystem builds a platform with the paper's kernels registered.
func NewSystem(cfg ClusterConfig) (*System, error) { return core.NewSystem(cfg) }

// DefaultClusterConfig returns the calibrated simulation cost model.
func DefaultClusterConfig() ClusterConfig { return cluster.Default() }

// Grid is a dense row-major raster of float64 cells.
type Grid = grid.Grid

// NewGrid allocates a zero raster.
func NewGrid(w, h int) *Grid { return grid.New(w, h) }

// Terrain generates a synthetic digital elevation model; Image generates
// a speckled intensity raster. Both are deterministic in the seed.
func Terrain(w, h int, seed uint64) *Grid { return workload.Terrain(w, h, seed) }

// Image generates a speckled intensity raster for the filtering kernels.
func Image(w, h int, seed uint64, speckleFrac float64) *Grid {
	return workload.Image(w, h, seed, speckleFrac)
}

// Layout maps a file's strips onto storage servers.
type Layout = layout.Layout

// RoundRobin is the parallel file system's default placement.
func RoundRobin(servers int) Layout { return layout.NewRoundRobin(servers) }

// GroupedReplicated is the paper's improved distribution: r successive
// strips per server with halo boundary strips replicated to neighbors.
func GroupedReplicated(servers, r, halo int) Layout {
	return layout.NewGroupedReplicated(servers, r, halo)
}

// Kernel is one offloadable analysis operation; Pattern extracts its
// dependence record.
type Kernel = kernels.Kernel

// Pattern returns a kernel's Kernel Features record.
func Pattern(k Kernel) features.Pattern { return kernels.Pattern(k) }

// ApplyKernel runs a kernel sequentially over a whole raster — the
// reference every distributed scheme must match byte for byte.
func ApplyKernel(k Kernel, g *Grid) *Grid { return kernels.Apply(k, g) }

// Accumulate computes full basin-wide flow accumulation over a direction
// raster (the global companion to the local flow-accumulation kernel).
func Accumulate(dirs *Grid) *Grid { return kernels.Accumulate(dirs) }

// DefaultKernels returns a registry with the paper's kernels:
// flow-routing, flow-accumulation, gaussian-filter, median-filter.
func DefaultKernels() *kernels.Registry { return kernels.Default() }

// Makespan returns the completion time of the slowest report in a batch
// produced by System.ExecuteConcurrent.
func Makespan(reports []Report) sim.Time { return core.Makespan(reports) }

// Reducer is a data-reducing scan (stats, histogram): the dependence-free
// workload classic active storage was built for. ReduceRequest submits
// one; ReduceReport is its outcome.
type (
	Reducer       = kernels.Reducer
	ReduceRequest = core.ReduceRequest
	ReduceReport  = core.ReduceReport
)

// ReduceAll runs a reducer sequentially over a whole raster — the
// reference distributed reductions must reproduce.
func ReduceAll(r Reducer, g *Grid) []float64 { return kernels.ReduceAll(r, g) }

// Mean and StdDev interpret a "stats" aggregate.
func Mean(agg []float64) float64   { return kernels.Mean(agg) }
func StdDev(agg []float64) float64 { return kernels.StdDev(agg) }

// PredictParams parameterizes a standalone prediction; Decision is the
// prediction core's verdict.
type (
	PredictParams = predict.Params
	Decision      = predict.Decision
)

// Decide runs the bandwidth prediction core against a concrete layout.
func Decide(pat features.Pattern, p PredictParams, lay Layout) (Decision, error) {
	return predict.Decide(pat, p, lay)
}

// Eq17 is the paper's closed-form locality criterion for stride patterns.
func Eq17(stride, elemSize, stripSize int64, r, d int) bool {
	return predict.Eq17(stride, elemSize, stripSize, r, d)
}

// ExperimentConfig parameterizes the evaluation sweeps; the zero-config
// entry point is DefaultExperiments.
type ExperimentConfig = experiments.Config

// DefaultExperiments mirrors the paper's §IV setup (1 GB → 1 MiB scale).
func DefaultExperiments() ExperimentConfig { return experiments.Default() }
